package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intellisphere/internal/catalog"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/durable"
	"intellisphere/internal/modelver"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/rowengine"
)

// This file makes the engine's learned state survive restarts: an
// engine-wide versioned snapshot (catalog, grid links, costing profiles,
// model-version archives) plus a write-ahead log of every registry
// mutation, layered on internal/durable. Boot restores the newest valid
// snapshot and replays the log past it; afterwards every acknowledged
// mutation is appended (and fsynced) before its caller sees success, so a
// SIGKILL at any point loses nothing that was acked. Model mutations log
// the *resulting* profile bytes rather than the operation: tuning outcomes
// depend on in-memory execution logs that die with the process, so
// replaying the operation could not reproduce them — replaying the bytes
// always does, which is what makes post-recovery Explain byte-identical.

// WAL op names. The vocabulary is closed: applyWALRecord rejects records
// it does not recognize, so a log written by a newer build fails loudly
// instead of replaying partially.
const (
	opRegisterTable  = "register_table"
	opSetLink        = "set_link"
	opMaterialize    = "materialize"
	opInstallProfile = "install_profile"
	opModelVersion   = "model_version"
	opModelLive      = "model_live"
)

// engineStateVersion guards the snapshot schema; a mismatch rejects the
// snapshot (recovery falls back to an older one or to WAL-only replay).
const engineStateVersion = 1

// engineState is the engine-wide snapshot: everything Explain's output
// depends on that is not rebuilt deterministically at boot. Remote
// simulators are deliberately absent — they are reconstructed from the same
// seed and flags every boot; the snapshot overlays the learned profiles
// onto them.
type engineState struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"saved_at"`
	// Tables is the full catalog (demo-registered tables included; restore
	// skips names already present).
	Tables []*catalog.Table `json:"tables,omitempty"`
	// Links holds the per-system QueryGrid overrides.
	Links map[string]querygrid.LinkConfig `json:"links,omitempty"`
	// Materialized lists tables with generated rows, re-materialized
	// deterministically on restore.
	Materialized []string `json:"materialized,omitempty"`
	// Profiles maps system → serialized hybrid costing profile (the models'
	// existing JSON wire format).
	Profiles map[string]json.RawMessage `json:"profiles,omitempty"`
	// Models is the model-version archive.
	Models modelver.State `json:"models"`
}

// WAL record payloads.
type linkPayload struct {
	System string               `json:"system"`
	Link   querygrid.LinkConfig `json:"link"`
}

type materializePayload struct {
	Table string `json:"table"`
}

type profilePayload struct {
	System  string          `json:"system"`
	Profile json.RawMessage `json:"profile"`
}

type modelVersionPayload struct {
	System  string                 `json:"system"`
	Origin  string                 `json:"origin"`
	Holdout *modelver.HoldoutScore `json:"holdout,omitempty"`
	Profile json.RawMessage        `json:"profile"`
}

type modelLivePayload struct {
	System  string          `json:"system"`
	ID      int             `json:"id"`
	Profile json.RawMessage `json:"profile"`
}

// DurabilityConfig configures OpenDurability.
type DurabilityConfig struct {
	// Dir is the data directory (created if absent).
	Dir string
	// RotateBytes is the WAL size past which a background snapshot (and log
	// rotation) triggers. 0 selects 4 MiB; negative disables size-triggered
	// snapshots (explicit Snapshot calls still rotate).
	RotateBytes int64
	// SnapshotKeep is how many snapshots to retain (0 selects 2).
	SnapshotKeep int
}

// Durability binds an engine to a durable.Store: it is the engine's
// mutation sink (every logged mutation flows through appendRecord) and the
// snapshot scheduler. One Durability per engine.
type Durability struct {
	e           *Engine
	store       *durable.Store
	rotateBytes int64
	recovery    durable.Recovery

	snapInFlight atomic.Bool
	snapErrs     atomic.Uint64
	wg           sync.WaitGroup
}

// OpenDurability opens (or creates) the data directory, restores the newest
// valid snapshot into the engine, replays WAL records past it, and attaches
// the engine's mutation sink so subsequent mutations are logged. Call it
// once, after the engine's remotes are registered (restore overlays learned
// profiles onto them) and before serving starts.
func OpenDurability(e *Engine, cfg DurabilityConfig) (*Durability, durable.Recovery, error) {
	if cfg.RotateBytes == 0 {
		cfg.RotateBytes = 4 << 20
	}
	store, rec, err := durable.Open(
		durable.StoreConfig{Dir: cfg.Dir, Keep: cfg.SnapshotKeep},
		durable.RecoverFuncs{
			Restore: func(_ uint64, data []byte) error { return e.restoreState(data) },
			Apply:   e.applyWALRecord,
		},
	)
	if err != nil {
		return nil, rec, err
	}
	d := &Durability{e: e, store: store, rotateBytes: cfg.RotateBytes, recovery: rec}
	e.dur.Store(d)
	return d, rec, nil
}

// Recovery reports what boot-time recovery did.
func (d *Durability) Recovery() durable.Recovery { return d.recovery }

// Stats exposes the store's durability counters plus snapshot failures.
func (d *Durability) Stats() (durable.Stats, uint64) {
	return d.store.Stats(), d.snapErrs.Load()
}

// appendRecord logs one mutation and, when the WAL has outgrown the
// rotation threshold, kicks off a background snapshot (single-flight).
func (d *Durability) appendRecord(op string, data json.RawMessage) error {
	if _, err := d.store.Append(op, data); err != nil {
		return err
	}
	if d.rotateBytes > 0 && d.store.WALSize() >= d.rotateBytes {
		d.snapshotAsync()
	}
	return nil
}

// snapshotAsync runs Snapshot in the background unless one is already in
// flight. Failures count into snapErrs (surfaced on /metrics/prom) but do
// not affect serving: the WAL still has every mutation.
func (d *Durability) snapshotAsync() {
	if !d.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.snapInFlight.Store(false)
		if err := d.Snapshot(); err != nil {
			d.snapErrs.Add(1)
		}
	}()
}

// Snapshot captures the engine's full state under the mutation locks,
// writes it as the snapshot covering every mutation logged so far, and
// rotates the WAL when the snapshot covers its entire contents. Serving
// (queries, Explain) is not blocked — only mutations are, for the capture.
func (d *Durability) Snapshot() error {
	e := d.e
	e.mutMu.Lock()
	e.tuneMu.Lock()
	st, err := e.captureState()
	seq := d.store.Seq()
	e.tuneMu.Unlock()
	e.mutMu.Unlock()
	if err != nil {
		return err
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("engine: serialize snapshot: %w", err)
	}
	return d.store.WriteSnapshot(seq, data)
}

// Close waits for any in-flight background snapshot, then closes the store.
// Mutations logged after Close fail (callers see the error and do not ack).
func (d *Durability) Close() error {
	d.wg.Wait()
	return d.store.Close()
}

// logMutation appends one mutation to the WAL through the attached
// durability sink; without one it is a no-op. Callers hold the lock that
// serialized the in-memory apply (mutMu or tuneMu), so WAL order is exactly
// apply order. A returned error means the mutation is applied in memory but
// NOT durable — callers propagate it so the client never sees an ack.
func (e *Engine) logMutation(op string, payload any) error {
	d := e.dur.Load()
	if d == nil {
		return nil
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("engine: encode %s mutation: %w", op, err)
	}
	if err := d.appendRecord(op, data); err != nil {
		return fmt.Errorf("engine: persist %s mutation: %w", op, err)
	}
	return nil
}

// captureState snapshots everything engineState carries. Caller holds
// mutMu and tuneMu, so no mutation is mid-apply; the serving read paths
// (registry snapshots, catalog list) are lock-free and unaffected.
func (e *Engine) captureState() (*engineState, error) {
	st := &engineState{
		Version: engineStateVersion,
		SavedAt: time.Now().UTC(),
		Tables:  e.cat.List(),
		Links:   e.grid.Links(),
		Models:  e.versions.Export(),
	}
	mats := e.materialized.Snapshot()
	if len(mats) > 0 {
		st.Materialized = make([]string, 0, len(mats))
		for name := range mats {
			st.Materialized = append(st.Materialized, name)
		}
		sort.Strings(st.Materialized)
	}
	ests := e.estimators.Snapshot()
	st.Profiles = make(map[string]json.RawMessage, len(ests))
	for name, est := range ests {
		h, ok := est.(*hybrid.Estimator)
		if !ok {
			continue // the master's sub-op estimator is rebuilt from seed
		}
		data, err := profileJSON(h)
		if err != nil {
			return nil, fmt.Errorf("engine: serialize profile for %q: %w", name, err)
		}
		st.Profiles[name] = data
	}
	return st, nil
}

// restoreState applies a snapshot to a freshly booted engine. It validates
// everything it can — schema version, profile decode, estimator
// construction, link configs — before mutating any engine state, so a
// rejected snapshot leaves the engine untouched and recovery can fall back
// to an older file. Systems present in the snapshot but absent this boot
// (a flag change removed a remote) are skipped rather than fatal.
func (e *Engine) restoreState(data []byte) error {
	var st engineState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("engine: decode snapshot: %w", err)
	}
	if st.Version != engineStateVersion {
		return fmt.Errorf("engine: snapshot schema v%d, this build reads v%d", st.Version, engineStateVersion)
	}
	// Validate phase: build every estimator and check every link before
	// touching the engine.
	ests := make(map[string]core.Estimator, len(st.Profiles))
	for name, raw := range st.Profiles {
		if _, ok := e.remotes.Get(name); !ok {
			continue
		}
		var prof hybrid.Profile
		if err := json.Unmarshal(raw, &prof); err != nil {
			return fmt.Errorf("engine: snapshot profile for %q: %w", name, err)
		}
		est, err := hybrid.NewEstimator(&prof)
		if err != nil {
			return fmt.Errorf("engine: snapshot profile for %q: %w", name, err)
		}
		ests[name] = est
	}
	for system, cfg := range st.Links {
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("engine: snapshot link for %q: %w", system, err)
		}
	}
	// Apply phase. Boot-registered tables (the deterministic demo set) are
	// already present; snapshot copies of them are skipped by name.
	for _, t := range st.Tables {
		if _, err := e.cat.Lookup(t.Name); err == nil {
			continue
		}
		if err := e.applyRegisterTable(t); err != nil {
			return fmt.Errorf("engine: restore table %q: %w", t.Name, err)
		}
	}
	for system, cfg := range st.Links {
		if _, ok := e.remotes.Get(system); !ok {
			continue
		}
		if err := e.grid.SetLink(system, cfg); err != nil {
			return fmt.Errorf("engine: restore link for %q: %w", system, err)
		}
	}
	for _, name := range st.Materialized {
		if err := e.applyMaterialize(name); err != nil {
			return fmt.Errorf("engine: re-materialize %q: %w", name, err)
		}
	}
	for name, est := range ests {
		e.estimators.Set(name, est)
	}
	e.versions.Restore(st.Models)
	return nil
}

// applyWALRecord replays one logged mutation during recovery. It mirrors
// the mutation methods minus the logging (replay must not re-log) and
// minus the serving-side bookkeeping that does not affect state.
func (e *Engine) applyWALRecord(rec durable.Record) error {
	switch rec.Op {
	case opRegisterTable:
		var t catalog.Table
		if err := json.Unmarshal(rec.Data, &t); err != nil {
			return err
		}
		if _, err := e.cat.Lookup(t.Name); err == nil {
			return nil // already present (snapshot/WAL overlap is seq-gated, but stay idempotent)
		}
		return e.applyRegisterTable(&t)
	case opSetLink:
		var p linkPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return e.grid.SetLink(p.System, p.Link)
	case opMaterialize:
		var p materializePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return e.applyMaterialize(p.Table)
	case opInstallProfile:
		var p profilePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return e.applyProfile(p.System, p.Profile)
	case opModelVersion:
		var p modelVersionPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		if err := e.applyProfile(p.System, p.Profile); err != nil {
			return err
		}
		e.versions.Record(p.System, p.Origin, p.Profile, p.Holdout, true)
		return nil
	case opModelLive:
		var p modelLivePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		if err := e.applyProfile(p.System, p.Profile); err != nil {
			return err
		}
		return e.versions.SetLive(p.System, p.ID)
	default:
		return fmt.Errorf("engine: unknown wal op %q", rec.Op)
	}
}

// applyProfile installs serialized profile bytes as a system's estimator —
// the replay form of every model mutation. Unknown systems (a flag change
// removed the remote) are skipped.
func (e *Engine) applyProfile(system string, raw json.RawMessage) error {
	if _, ok := e.remotes.Get(system); !ok {
		return nil
	}
	var prof hybrid.Profile
	if err := json.Unmarshal(raw, &prof); err != nil {
		return fmt.Errorf("engine: decode profile for %q: %w", system, err)
	}
	est, err := hybrid.NewEstimator(&prof)
	if err != nil {
		return fmt.Errorf("engine: rebuild estimator for %q: %w", system, err)
	}
	e.estimators.Set(system, est)
	return nil
}

// applyRegisterTable is catalog registration with referential checks but
// without WAL logging — shared by RegisterTable, snapshot restore, and
// replay.
func (e *Engine) applyRegisterTable(t *catalog.Table) error {
	if t.System != "" {
		if _, ok := e.remotes.Get(t.System); !ok {
			return fmt.Errorf("engine: table %q references unregistered system %q", t.Name, t.System)
		}
	}
	for _, r := range t.Replicas {
		if _, ok := e.remotes.Get(r); !ok {
			return fmt.Errorf("engine: table %q replica references unregistered system %q", t.Name, r)
		}
	}
	return e.cat.Register(t)
}

// applyMaterialize is row materialization without WAL logging — shared by
// Materialize, snapshot restore, and replay. Materialization is a pure
// function of (name, rows), so replaying it reproduces identical rows.
func (e *Engine) applyMaterialize(name string) error {
	t, err := e.cat.Lookup(name)
	if err != nil {
		return err
	}
	tb, err := rowengine.Materialize(name, t.Rows)
	if err != nil {
		return err
	}
	e.materialized.Set(name, tb)
	return nil
}

// MaterializedNames lists the tables with generated rows, sorted.
func (e *Engine) MaterializedNames() []string {
	snap := e.materialized.Snapshot()
	out := make([]string, 0, len(snap))
	for name := range snap {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
