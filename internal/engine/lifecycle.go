package engine

import (
	"encoding/json"
	"fmt"
	"os"

	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/durable"
	"intellisphere/internal/modelver"
	"intellisphere/internal/nn"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/remote"
)

// This file implements the operational lifecycle around the costing
// profiles: persisting and restoring them (the CP of Figure 9 survives
// master restarts), calibrating QueryGrid links from probe transfers, and
// triggering the periodic offline tuning phase of Section 3.

// SaveProfile serializes a registered remote's costing profile to path.
// Only remotes registered with a hybrid (profile-backed) estimator can be
// saved. The write goes through durable.WriteFileAtomic (temp file, fsync,
// rename) — a crash mid-write can never leave a truncated profile where
// RegisterRemoteFromProfile would later choke on it.
func (e *Engine) SaveProfile(system, path string) error {
	est, err := e.Estimator(system)
	if err != nil {
		return err
	}
	h, ok := est.(*hybrid.Estimator)
	if !ok {
		return fmt.Errorf("engine: system %q has no costing profile to save", system)
	}
	data, err := json.MarshalIndent(h.Profile(), "", " ")
	if err != nil {
		return fmt.Errorf("engine: serialize profile for %q: %w", system, err)
	}
	if err := durable.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("engine: write profile: %w", err)
	}
	return nil
}

// RegisterRemoteFromProfile registers a remote system with a costing
// profile previously saved by SaveProfile — skipping every training phase.
// The profile's system name must match the remote's.
func (e *Engine) RegisterRemoteFromProfile(sys remote.System, path string) (*hybrid.Estimator, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: read profile: %w", err)
	}
	var prof hybrid.Profile
	if err := json.Unmarshal(data, &prof); err != nil {
		return nil, fmt.Errorf("engine: decode profile: %w", err)
	}
	if prof.SystemName != sys.Name() {
		return nil, fmt.Errorf("engine: profile names system %q, remote is %q", prof.SystemName, sys.Name())
	}
	est, err := hybrid.NewEstimator(&prof)
	if err != nil {
		return nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, err
	}
	return est, nil
}

// CalibrateLink times probe transfers over the given measure function, fits
// the link's bandwidth/latency/per-row overhead, and installs the result as
// the QueryGrid link for the named remote system.
func (e *Engine) CalibrateLink(system string, measure querygrid.MeasureFunc) (querygrid.LinkConfig, error) {
	if _, err := e.Remote(system); err != nil {
		return querygrid.LinkConfig{}, err
	}
	cfg, err := querygrid.Calibrate(measure, querygrid.CalibrateConfig{})
	if err != nil {
		return querygrid.LinkConfig{}, err
	}
	if err := e.SetLink(system, cfg); err != nil {
		return querygrid.LinkConfig{}, err
	}
	return cfg, nil
}

// SwitchProfile forces a hybrid system's active costing approach (sub-op or
// logical-op) and WAL-logs the resulting profile, so the switch survives a
// restart.
func (e *Engine) SwitchProfile(system string, active core.Approach) error {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	h, err := e.hybridFor(system)
	if err != nil {
		return err
	}
	if err := h.Switch(active); err != nil {
		return err
	}
	data, err := profileJSON(h)
	if err != nil {
		return fmt.Errorf("engine: serialize profile for %q: %w", system, err)
	}
	return e.logMutation(opInstallProfile, profilePayload{System: system, Profile: data})
}

// InstallLogicalModels hot-swaps trained logical-op models into a hybrid
// system's profile (Figure 9's t1 moment) and WAL-logs the resulting
// profile. Nil models leave the existing ones in place.
func (e *Engine) InstallLogicalModels(system string, join, agg, scan *logicalop.Model) error {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	h, err := e.hybridFor(system)
	if err != nil {
		return err
	}
	h.InstallLogicalModels(join, agg, scan)
	data, err := profileJSON(h)
	if err != nil {
		return fmt.Errorf("engine: serialize profile for %q: %w", system, err)
	}
	return e.logMutation(opInstallProfile, profilePayload{System: system, Profile: data})
}

// TuneReport summarizes one offline tuning pass over a remote's logical
// models. Each operator model re-fits its own α, so the refit values are
// reported per model; AlphaRecords is the total remedy-record count across
// all models that tuned.
type TuneReport struct {
	JoinTuned, AggTuned, ScanTuned bool
	JoinAlpha                      float64
	AggAlpha                       float64
	ScanAlpha                      float64
	AlphaRecords                   int
}

// TuneSystem runs the offline batch tuning phase (Section 3) on a remote's
// logical-op models: each model with pending logged executions re-fits α
// from the remedy records and folds the log into its network, expanding the
// trained ranges under the continuity rule. Models without pending logs are
// skipped.
func (e *Engine) TuneSystem(system string, tc nn.TrainConfig) (*TuneReport, error) {
	// tuneMu serializes this in-place pass against candidate tunes and
	// rollbacks, and orders its WAL record with every other model mutation.
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	est, err := e.Estimator(system)
	if err != nil {
		return nil, err
	}
	h, ok := est.(*hybrid.Estimator)
	if !ok {
		return nil, fmt.Errorf("engine: system %q has no tunable profile", system)
	}
	// Tuning consumes each model's pending log, so any feedback still queued
	// in the batcher has to land first or the pass would silently skip it.
	e.FlushFeedback()
	prof := h.Profile()
	rep := &TuneReport{}
	tune := func(m interface {
		PendingLog() int
		RefitAlpha() (float64, int)
		OfflineTune(nn.TrainConfig) (*nn.TrainResult, error)
		Alpha() float64
	}, alpha *float64) (bool, error) {
		if m == nil || m.PendingLog() == 0 {
			return false, nil
		}
		a, n := m.RefitAlpha()
		*alpha, rep.AlphaRecords = a, rep.AlphaRecords+n
		if _, err := m.OfflineTune(tc); err != nil {
			return false, err
		}
		return true, nil
	}
	if prof.LogicalJoin != nil {
		if rep.JoinTuned, err = tune(prof.LogicalJoin, &rep.JoinAlpha); err != nil {
			return nil, fmt.Errorf("engine: tune %q join model: %w", system, err)
		}
	}
	if prof.LogicalAgg != nil {
		if rep.AggTuned, err = tune(prof.LogicalAgg, &rep.AggAlpha); err != nil {
			return nil, fmt.Errorf("engine: tune %q aggregation model: %w", system, err)
		}
	}
	if prof.LogicalScan != nil {
		if rep.ScanTuned, err = tune(prof.LogicalScan, &rep.ScanAlpha); err != nil {
			return nil, fmt.Errorf("engine: tune %q scan model: %w", system, err)
		}
	}
	if rep.JoinTuned || rep.AggTuned || rep.ScanTuned {
		// Offline tuning mutates the profile's models in place, so cached
		// plans costed against the old models are stale.
		h.BumpGeneration()
		// The accuracy windows scored the pre-tune models; left alone they
		// would keep reporting (and re-triggering on) drift the tune already
		// fixed.
		e.ResetAccuracy(system)
		data, jerr := profileJSON(h)
		if jerr != nil {
			return nil, fmt.Errorf("engine: serialize tuned profile for %q: %w", system, jerr)
		}
		if _, verr := e.recordModelVersion(system, modelver.OriginTuneSystem, data, nil); verr != nil {
			return nil, verr
		}
	}
	return rep, nil
}
