package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"intellisphere/internal/datagen"
	"intellisphere/internal/modelver"
	"intellisphere/internal/querygrid"
)

// persistStatements is the probe mix the durability tests byte-compare
// across restarts: the drift aggregation and joins over the tune rig's
// tables plus the mutation-registered soak table (the rig trains join and
// aggregation models only, so scans stay out of the mix).
func persistStatements() []string {
	return []string{
		driftSQL,
		"SELECT t10000_40.a1 FROM t10000_40 JOIN t100000_100 ON t10000_40.a1 = t100000_100.a1",
		"SELECT soak_t1.a1 FROM soak_t1 JOIN t10000_40 ON soak_t1.a1 = t10000_40.a1",
	}
}

func explainAll(t *testing.T, e *Engine, stmts []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(stmts))
	for _, sql := range stmts {
		s, err := e.Explain(sql)
		if err != nil {
			t.Fatalf("Explain %q: %v", sql, err)
		}
		out[sql] = s
	}
	return out
}

// buildDurableRig stands up the tune rig with durability attached and runs
// the full mutation mix. It returns the engine, its durability handle, and
// the pre-crash Explain outputs.
func buildDurableRig(t *testing.T, dir string) (*Engine, *Durability, map[string]string) {
	t.Helper()
	e, _, inj := newTuneRig(t)
	d, rec, err := OpenDurability(e, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("OpenDurability: %v", err)
	}
	if rec.Restored || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}

	// Catalog mutation + materialization.
	tb, err := datagen.Table(5000, 40, "hivebb")
	if err != nil {
		t.Fatal(err)
	}
	tb.Name = "soak_t1"
	if err := e.RegisterTable(tb); err != nil {
		t.Fatalf("RegisterTable: %v", err)
	}
	if err := e.Materialize("soak_t1"); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Link mutation.
	if err := e.SetLink("hivebb", querygrid.LinkConfig{
		BandwidthBytesPerSec: 5e7, LatencySec: 0.1, PerRowOverheadUS: 1,
	}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	// Model mutation: drift the aggregation model and promote a candidate.
	driftRig(t, e, inj, 8)
	out, err := e.TuneCandidate(context.Background(), "hivebb", fastTune())
	if err != nil {
		t.Fatalf("TuneCandidate: %v", err)
	}
	if !out.Promoted {
		t.Fatalf("candidate not promoted: %+v", out)
	}
	return e, d, explainAll(t, e, persistStatements())
}

// recoverRig rebuilds the deterministic boot state (a fresh tune rig) and
// recovers it from dir — the restart half of every crash test.
func recoverRig(t *testing.T, dir string) (*Engine, *Durability) {
	t.Helper()
	e, _, _ := newTuneRig(t)
	d, _, err := OpenDurability(e, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("recovery OpenDurability: %v", err)
	}
	return e, d
}

// checkRecovered asserts the recovered engine matches the pre-crash one:
// byte-identical Explain, the mutation-registered table present and
// materialized, the link override installed, and the version lineage
// (IDs, origins, live marker) reproduced.
func checkRecovered(t *testing.T, e *Engine, want map[string]string) {
	t.Helper()
	got := explainAll(t, e, persistStatements())
	for sql, w := range want {
		if got[sql] != w {
			t.Errorf("Explain %q diverged after recovery:\npre-crash:\n%s\nrecovered:\n%s", sql, w, got[sql])
		}
	}
	if _, err := e.Catalog().Lookup("soak_t1"); err != nil {
		t.Errorf("mutation-registered table lost: %v", err)
	}
	found := false
	for _, name := range e.MaterializedNames() {
		if name == "soak_t1" {
			found = true
		}
	}
	if !found {
		t.Errorf("materialization lost: %v", e.MaterializedNames())
	}
	links := e.Grid().Links()
	if l, ok := links["hivebb"]; !ok || l.BandwidthBytesPerSec != 5e7 {
		t.Errorf("link override lost: %+v", links)
	}
	vs := e.ModelVersions("hivebb")
	if len(vs) != 2 {
		t.Fatalf("version history = %d entries, want 2 (baseline + tuned)", len(vs))
	}
	if vs[0].ID != 1 || vs[0].Origin != modelver.OriginInitial || vs[0].Live {
		t.Errorf("baseline version = %+v", vs[0])
	}
	if vs[1].ID != 2 || vs[1].Origin != modelver.OriginTuned || !vs[1].Live {
		t.Errorf("tuned version = %+v", vs[1])
	}
}

// TestDurabilityWALReplay crashes (Close without snapshot) and recovers
// purely from the write-ahead log.
func TestDurabilityWALReplay(t *testing.T) {
	dir := t.TempDir()
	_, d, want := buildDurableRig(t, dir)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	e2, d2 := recoverRig(t, dir)
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Restored {
		t.Fatalf("recovered from a snapshot that was never written: %+v", rec)
	}
	if rec.Replayed == 0 {
		t.Fatalf("no WAL records replayed: %+v", rec)
	}
	checkRecovered(t, e2, want)
}

// TestDurabilitySnapshotRestore snapshots before the crash: recovery must
// come from the snapshot with an empty (rotated) WAL.
func TestDurabilitySnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	_, d, want := buildDurableRig(t, dir)
	if err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st, _ := d.Stats()
	if st.WALBytes != 0 {
		t.Fatalf("WAL not rotated after snapshot: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	e2, d2 := recoverRig(t, dir)
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.Restored || rec.Replayed != 0 {
		t.Fatalf("recovery = %+v, want snapshot restore with nothing to replay", rec)
	}
	checkRecovered(t, e2, want)

	// Mutations after recovery keep extending the same lineage: the version
	// store's ID counter survived the snapshot.
	if _, err := e2.RollbackModel("hivebb"); err != nil {
		t.Fatalf("rollback after recovery: %v", err)
	}
	vs := e2.ModelVersions("hivebb")
	if !vs[0].Live || vs[1].Live {
		t.Errorf("rollback after recovery did not move the live marker: %+v", vs)
	}
}

// TestDurabilityTornWALTail simulates a SIGKILL mid-append: garbage after
// the acked records must be truncated away, with everything acked intact.
func TestDurabilityTornWALTail(t *testing.T) {
	dir := t.TempDir()
	_, d, want := buildDurableRig(t, dir)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99\x00\x00\x00torn mid-append")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, d2 := recoverRig(t, dir)
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.TornTail || rec.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	checkRecovered(t, e2, want)
}

// TestDurabilitySnapshotFallback corrupts the newest snapshot: recovery
// must fall back to the older one and still land in the identical state
// (the WAL past the older snapshot was rotated away only by the newer one,
// so this exercises the snapshot-only path of the fallback).
func TestDurabilitySnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	e1, d, _ := buildDurableRig(t, dir)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A second mutation + snapshot so two snapshot files exist.
	if err := e1.SetLink("hivebb", querygrid.LinkConfig{
		BandwidthBytesPerSec: 9e7, LatencySec: 0.2, PerRowOverheadUS: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot file in place.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.json"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots on disk = %v (err %v), want 2", snaps, err)
	}
	if err := os.WriteFile(snaps[1], []byte("{ corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2, d2 := recoverRig(t, dir)
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.Restored || rec.SnapshotsDiscarded != 1 {
		t.Fatalf("recovery = %+v, want fallback past 1 discarded snapshot", rec)
	}
	// The older snapshot misses the second SetLink: that mutation's WAL
	// record was rotated away by the newer (now corrupt) snapshot, so the
	// fallback deliberately recovers the first override — losing at most the
	// rotation window, never the whole state.
	links := e2.Grid().Links()
	if l := links["hivebb"]; l.BandwidthBytesPerSec != 5e7 {
		t.Errorf("fallback link = %+v, want the first override (5e7)", l)
	}
	vs := e2.ModelVersions("hivebb")
	if len(vs) != 2 || !vs[1].Live {
		t.Errorf("fallback lost version lineage: %+v", vs)
	}
}
