package engine

import (
	"context"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/remote"
)

// The parallel suite measures how the warm serving path scales across cores:
// run it with `go test -bench Parallel -cpu 1,2,4,8` (scripts/bench_snapshot.sh
// records the sweep into the BENCH_PR*.json trajectory with scaling ratios).
// Each benchmark is the RunParallel analogue of its single-goroutine
// counterpart — same fixture, same statements — so ns/op at -cpu 1 is
// directly comparable to the serial numbers, and throughput at -cpu N shows
// whether a shared-write bottleneck survives on the hot path.

// parallelBenchEngine is the BenchmarkExplain fixture: a hive remote with
// sub-op models and three tables, plan cache enabled.
func parallelBenchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
		b.Fatal(err)
	}
	for _, spec := range []ts{{1000000, 100}, {100000, 100}, {10000000, 250}, {10000, 100}, {1000000, 250}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hive")
		if err != nil {
			b.Fatal(err)
		}
		if err := e.RegisterTable(tb); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkExplainParallel is BenchmarkExplain/cached under RunParallel:
// every iteration is a warm plan-cache hit (parse front cache + sharded plan
// cache + Explain memo), the purest read-path contention probe.
func BenchmarkExplainParallel(b *testing.B) {
	e := parallelBenchEngine(b)
	const sql = "SELECT r.a1 FROM t10000000_250 r JOIN t100000_100 s ON r.a1 = s.a1 JOIN t1000000_100 u ON s.a1 = u.a1 WHERE r.a1 < 500000 ORDER BY r.a1 LIMIT 10"
	if _, err := e.Explain(sql); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Explain(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryParallel executes a rotating warm statement mix end to end —
// plan-cache hit, simulated remote execution (memoized), breaker bookkeeping,
// accuracy recording, feedback enqueue, stage histograms — the full /query
// serving path per iteration.
func BenchmarkQueryParallel(b *testing.B) {
	e := parallelBenchEngine(b)
	for _, sql := range batchSQLs { // warm every statement's plan
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := e.Query(batchSQLs[i%len(batchSQLs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkServeQueryBatchParallel runs the 16-statement QueryBatch fixture
// concurrently; ns/op divided by 16 compares against the serial
// BenchmarkServeQueryBatch/batch per-statement figure.
func BenchmarkServeQueryBatchParallel(b *testing.B) {
	e := parallelBenchEngine(b)
	stmts := make([]string, 0, 16)
	for len(stmts) < 16 {
		stmts = append(stmts, batchSQLs...)
	}
	stmts = stmts[:16]
	ctx := context.Background()
	for _, it := range e.QueryBatch(ctx, stmts) { // warm
		if it.Err != nil {
			b.Fatal(it.Err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for _, it := range e.QueryBatch(ctx, stmts) {
				if it.Err != nil {
					b.Fatal(it.Err)
				}
			}
		}
	})
}
