package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/faults"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
	"intellisphere/internal/trace"
)

// spanNames lists a span's direct children in order.
func spanNames(s *trace.Span) []string {
	out := make([]string, len(s.Children))
	for i, c := range s.Children {
		out[i] = c.Name
	}
	return out
}

// findChild returns the first direct child with the given name.
func findChild(t *testing.T, s *trace.Span, name string) *trace.Span {
	t.Helper()
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("span %q has no %q child (children: %v)", s.Name, name, spanNames(s))
	return nil
}

// TestQueryTracedSpanTree runs one traced query end to end and checks the
// whole span tree: parse → plan (with one costing span per candidate
// placement) → execute (with one span per plan step), all with consistent
// timings, recorded into the engine's trace ring.
func TestQueryTracedSpanTree(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{100000, 100}, ts{1000000, 250})

	sql := "SELECT a5, COUNT(a1) FROM t1000000_250 GROUP BY a5"
	res, tr, err := e.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatalf("QueryTraced: %v", err)
	}
	if res.Trace != tr || tr == nil {
		t.Fatal("result does not carry the trace")
	}
	if tr.ID != 1 {
		t.Errorf("trace ID = %d, want 1 (first recorded)", tr.ID)
	}
	if tr.SQL != sql || tr.Error != "" {
		t.Errorf("trace header = %q / %q", tr.SQL, tr.Error)
	}
	root := tr.Root
	if root.Name != "query" {
		t.Fatalf("root span = %q", root.Name)
	}
	if got, want := spanNames(root), []string{"parse", "plan", "execute"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pipeline spans = %v, want %v", got, want)
	}

	// Planning costs the aggregation on every candidate placement: the
	// master and hive both host (or replicate) the table, so there must be
	// one costing span per candidate system, each annotated with the
	// operator and its estimate.
	plan := findChild(t, root, "plan")
	if plan.Attr("cache") != "miss" {
		t.Errorf("first plan cache attr = %q, want miss", plan.Attr("cache"))
	}
	systems := map[string]bool{}
	for _, c := range plan.Children {
		if c.Name != "cost" {
			continue
		}
		systems[c.System] = true
		if c.Attr("operator") != "aggregation" {
			t.Errorf("cost span operator = %q on %q", c.Attr("operator"), c.System)
		}
		if c.Attr("estimated_sec") == "" {
			t.Errorf("cost span on %q has no estimate", c.System)
		}
	}
	if len(systems) < 2 {
		t.Errorf("costing spans cover systems %v, want at least 2 candidates", systems)
	}

	// Execution mirrors the plan: one span per step, in order, each with
	// the step's system and both cost figures.
	exec := findChild(t, root, "execute")
	if len(exec.Children) != len(res.Plan.Steps) {
		t.Fatalf("execute has %d spans for %d steps", len(exec.Children), len(res.Plan.Steps))
	}
	for i, step := range res.Plan.Steps {
		sp := exec.Children[i]
		if sp.Name != step.Kind || sp.System != step.System {
			t.Errorf("step %d span = %s on %s, want %s on %s", i, sp.Name, sp.System, step.Kind, step.System)
		}
		if step.Kind != "transfer" && sp.Attr("actual_sec") == "" {
			t.Errorf("step %d (%s) has no observed actual", i, step.Kind)
		}
	}

	// Timing consistency: children start within the root and end within the
	// trace's total duration.
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		if s.StartNanos < 0 || s.StartNanos+s.DurationNanos > tr.DurationNanos {
			t.Errorf("span %q [%d, +%d] escapes trace duration %d",
				s.Name, s.StartNanos, s.DurationNanos, tr.DurationNanos)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)

	// The ring serves the trace back, and the stats count it.
	recent := e.RecentTraces(0)
	if len(recent) != 1 || recent[0] != tr {
		t.Fatalf("RecentTraces = %v", recent)
	}
	if got := e.Stats().Traces; got != 1 {
		t.Errorf("Stats().Traces = %d", got)
	}

	// A repeat of the same statement is served from the plan cache and says
	// so on its plan span.
	_, tr2, err := e.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := findChild(t, tr2.Root, "plan").Attr("cache"); got != "hit" {
		t.Errorf("second plan cache attr = %q, want hit", got)
	}
	if tr2.ID != 2 {
		t.Errorf("second trace ID = %d", tr2.ID)
	}
}

// TestUntracedQueryRecordsNothing pins the opt-in contract: plain Query
// leaves no trace behind, and a negative TraceBuffer disables the ring while
// QueryTraced still returns its trace inline.
func TestUntracedQueryRecordsNothing(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{100000, 100})
	res, err := e.Query("SELECT a1 FROM t100000_100 WHERE a1 < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced query carries a trace")
	}
	if n := len(e.RecentTraces(0)); n != 0 {
		t.Errorf("ring holds %d traces after untraced query", n)
	}

	noRing, err := New(Config{Seed: 9, TraceBuffer: -1})
	if err != nil {
		t.Fatal(err)
	}
	registerHive(t, noRing)
	registerTables(t, noRing, "hive", ts{100000, 100})
	_, tr, err := noRing.QueryTraced(context.Background(), "SELECT a1 FROM t100000_100 WHERE a1 < 100")
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Root == nil || len(tr.Root.Children) == 0 {
		t.Fatal("disabled ring suppressed the inline trace")
	}
	if tr.ID != 0 {
		t.Errorf("unrecorded trace got ID %d", tr.ID)
	}
	if got := noRing.RecentTraces(0); got != nil {
		t.Errorf("RecentTraces with disabled ring = %v", got)
	}
}

// TestAccuracyTracksLatencyFaults is the estimator-accuracy loop under
// stress: on a healthy federation the per-(system, operator) windows sit
// near q-error 1; once every hive call's latency spikes 20x, the hive
// windows must drift while the untouched master stays calibrated.
func TestAccuracyTracksLatencyFaults(t *testing.T) {
	rig := newChaosRig(t, resilience.BreakerConfig{})
	sql := rig.hiveQuery(t)
	for i := 0; i < 5; i++ {
		if _, err := rig.eng.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	before := rig.eng.Stats().Accuracy
	var hiveKeys []string
	for k, s := range before {
		if strings.HasPrefix(k, "hive/") {
			hiveKeys = append(hiveKeys, k)
			if s.Drifting || s.MeanQError > 1.5 {
				t.Errorf("healthy window %s already drifted: %+v", k, s)
			}
		}
	}
	if len(hiveKeys) == 0 {
		t.Fatalf("no hive accuracy windows after healthy queries: %v", before)
	}

	// Every hive call now takes 20x its estimate. The estimator has no idea;
	// the accuracy window is what notices.
	rig.hive.Configure(faults.Config{Seed: 7, Rates: faults.Rates{Latency: 1, LatencyFactor: 20}})
	for i := 0; i < 30; i++ {
		if _, err := rig.eng.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	after := rig.eng.Stats().Accuracy
	for _, k := range hiveKeys {
		b, a := before[k], after[k]
		if a.MeanQError <= b.MeanQError {
			t.Errorf("%s mean q-error did not rise under latency spikes: %v -> %v", k, b.MeanQError, a.MeanQError)
		}
		if !a.Drifting {
			t.Errorf("%s not flagged drifting after 20x latency (mean q-error %v)", k, a.MeanQError)
		}
	}
	for k, s := range after {
		if !strings.HasPrefix(k, "hive/") && s.Drifting {
			t.Errorf("unfaulted window %s drifted: %+v", k, s)
		}
	}
}

// TestStatsJSONRoundTrip pins the whole Stats payload as lossless JSON: what
// /metrics serves can be decoded back into an identical Stats — no
// infinities, no NaNs, no fields dropped by tags — including the resilience
// and accuracy sections.
func TestStatsJSONRoundTrip(t *testing.T) {
	rig := newChaosRig(t, resilience.BreakerConfig{})
	sql := rig.hiveQuery(t)
	// Populate every section: traced queries, retries, a degraded re-plan.
	if _, _, err := rig.eng.QueryTraced(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	rig.hive.Configure(faults.Config{Seed: 7, Rates: faults.Rates{Transient: 1}})
	if _, err := rig.eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	rig.hive.Configure(faults.Config{Seed: 7})

	st := rig.eng.Stats()
	if st.Resilience.Retries == 0 || st.Resilience.Fallbacks == 0 {
		t.Fatalf("scenario did not exercise resilience: %+v", st.Resilience)
	}
	if len(st.Accuracy) == 0 {
		t.Fatal("no accuracy windows to round-trip")
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Errorf("stats round-trip diverged:\n got %+v\nwant %+v", back, st)
	}
}

// BenchmarkQueryUntraced and BenchmarkQueryTraced bracket the tracing
// overhead on the full serving path (compare with benchstat; the untraced
// path must stay within noise of a build without instrumentation — the
// disabled hot path is one context lookup and nil-receiver calls, pinned
// allocation-free by the trace package's AllocsPerRun test).
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
		b.Fatal(err)
	}
	tb, err := datagen.Table(100000, 100, "hive")
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterTable(tb); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkQueryUntraced(b *testing.B) {
	e := benchEngine(b)
	sql := "SELECT a1 FROM t100000_100 WHERE a1 < 100"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTraced(b *testing.B) {
	e := benchEngine(b)
	sql := "SELECT a1 FROM t100000_100 WHERE a1 < 100"
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.QueryTraced(ctx, sql); err != nil {
			b.Fatal(err)
		}
	}
}
