package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"intellisphere/internal/sqlparse"
)

// stmtCache is an LRU of parsed statements keyed by the raw SQL text.
// Parsing is pure (the result depends only on the text) and parsed
// statements are read-only downstream, so entries never go stale — unlike
// plans, no generation tracking is needed. It removes the parse cost from
// the repeated-statement serving path, leaving a plan-cache hit as a pair
// of map lookups.
//
// A direct-mapped, lock-free front cache sits above the LRU: one atomic
// pointer per slot indexed by a cheap hash of the SQL text. Hot statements
// hit the front slots without touching the mutex or the recency list. Since
// entries never go stale, a front slot outliving its LRU entry is harmless;
// the only cost of a front hit is a skipped recency bump, which at serving
// QPS the frequent misses-to-LRU of the same statement repair.
type stmtCache struct {
	front   [stmtFrontSlots]stmtFrontSlot
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element
}

const stmtFrontSlots = 256 // power of two

// stmtFrontSlot pads each front pointer to its own cache line so concurrent
// stores to neighbouring slots (different hot statements landing on adjacent
// indexes) do not false-share. 256 slots × 64B is 16KiB per engine — noise
// next to the parsed statements the slots point at.
type stmtFrontSlot struct {
	p atomic.Pointer[stmtEntry]
	_ [56]byte
}

type stmtEntry struct {
	sql  string
	stmt *sqlparse.SelectStmt
}

// stmtSlot hashes the SQL text to a front-cache slot (FNV-1a).
func stmtSlot(sql string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(sql); i++ {
		h = (h ^ uint64(sql[i])) * 1099511628211
	}
	return h & (stmtFrontSlots - 1)
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &stmtCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (c *stmtCache) get(sql string) (*sqlparse.SelectStmt, bool) {
	slot := stmtSlot(sql)
	if e := c.front[slot].p.Load(); e != nil && e.sql == sql {
		return e.stmt, true
	}
	c.mu.Lock()
	el, ok := c.entries[sql]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*stmtEntry)
	c.mu.Unlock()
	c.front[slot].p.Store(e)
	return e.stmt, true
}

func (c *stmtCache) put(sql string, stmt *sqlparse.SelectStmt) {
	e := &stmtEntry{sql: sql, stmt: stmt}
	c.front[stmtSlot(sql)].p.Store(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[sql] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*stmtEntry).sql)
	}
}
