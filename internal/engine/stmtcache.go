package engine

import (
	"container/list"
	"sync"

	"intellisphere/internal/sqlparse"
)

// stmtCache is an LRU of parsed statements keyed by the raw SQL text.
// Parsing is pure (the result depends only on the text) and parsed
// statements are read-only downstream, so entries never go stale — unlike
// plans, no generation tracking is needed. It removes the parse cost from
// the repeated-statement serving path, leaving a plan-cache hit as a pair
// of map lookups.
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element
}

type stmtEntry struct {
	sql  string
	stmt *sqlparse.SelectStmt
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &stmtCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (c *stmtCache) get(sql string) (*sqlparse.SelectStmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[sql]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*stmtEntry).stmt, true
}

func (c *stmtCache) put(sql string, stmt *sqlparse.SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		el.Value.(*stmtEntry).stmt = stmt
		c.ll.MoveToFront(el)
		return
	}
	c.entries[sql] = c.ll.PushFront(&stmtEntry{sql: sql, stmt: stmt})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*stmtEntry).sql)
	}
}
