package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"intellisphere/internal/core"
	"intellisphere/internal/datagen"
	"intellisphere/internal/nn"
	"intellisphere/internal/querygrid"
)

// genSum mirrors optimizer.generation: the invalidation vector the plan
// cache stamps entries with. Mutation counters only increase, so the sum is
// monotonic and two equal reads bracket a mutation-free interval.
func genSum(e *Engine) uint64 {
	g := e.cat.Generation() + e.grid.Generation() + e.estimators.Generation()
	for _, est := range e.estimators.Snapshot() {
		if v, ok := est.(core.Versioned); ok {
			g += v.Generation()
		}
	}
	return g
}

// TestPlanCacheGenerationStorm is the sharded cache's torture test: reader
// goroutines hammer warm Explain while a mutator loops RegisterTable /
// SetLink / SwitchProfile / TuneSystem, each of which bumps the generation
// vector. Under -race this exercises every lock-free path (COW shard maps,
// CLOCK bits, stale evict-on-sight) against concurrent invalidation.
//
// Staleness is asserted two ways, both sound against the engine's
// mutate-then-bump ordering:
//   - any Explain observed entirely at the final generation (the bracketing
//     genSum reads both equal it) must render byte-identically to a
//     from-scratch replan of the final state;
//   - after the storm, purging the cache and replanning must reproduce the
//     cached renders exactly — a stale survivor would differ.
//
// Counter reconciliation closes the books: every Explain/Query performs
// exactly one cache lookup, so summed shard hits+misses must equal the
// number of calls.
func TestPlanCacheGenerationStorm(t *testing.T) {
	e := newEngine(t)
	registerLogicalHive(t, e)

	statements := []string{
		"SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10",
		"SELECT r.a1 FROM t80000000_500 r JOIN t100000_100 s ON r.a1 = s.a1",
		"SELECT a1 FROM t40000_250 WHERE a1 < 1000",
	}

	var lookups atomic.Uint64
	// Seed the execution log so the mutator's TuneSystem passes have records
	// to fold in.
	for _, sql := range statements {
		if _, err := e.Query(sql); err != nil {
			t.Fatal(err)
		}
		lookups.Add(1)
	}
	e.FlushFeedback()

	type obs struct {
		sql, out string
		gen      uint64 // genSum before and after, when equal (else 0 = discard)
	}
	const readers = 8
	const explainsPerReader = 150
	// Readers run at least explainsPerReader iterations and keep going until
	// the mutator is done plus a short tail, so some observations are always
	// bracketed at the final generation even when -race slows the mutator.
	mutatorDone := make(chan struct{})
	results := make([][]obs, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]obs, 0, explainsPerReader)
			tail := -1
			for i := 0; ; i++ {
				if i >= explainsPerReader {
					if tail < 0 {
						select {
						case <-mutatorDone:
							tail = i + 10
						default:
						}
					} else if i >= tail {
						break
					}
					if i > 100000 {
						t.Error("reader never saw the mutator finish")
						return
					}
				}
				sql := statements[(g+i)%len(statements)]
				g1 := genSum(e)
				out, err := e.Explain(sql)
				lookups.Add(1)
				if err != nil {
					t.Errorf("Explain under storm: %v", err)
					return
				}
				if out == "" {
					t.Error("empty Explain under storm")
					return
				}
				if g2 := genSum(e); g1 == g2 {
					buf = append(buf, obs{sql: sql, out: out, gen: g1})
				}
			}
			results[g] = buf
		}(g)
	}

	// The mutator: every iteration bumps at least one generation component.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(mutatorDone)
		slow := querygrid.DefaultLink()
		slow.BandwidthBytesPerSec /= 4 // cheaper shipping vs default: plans re-cost
		for i := 0; i < 6; i++ {
			tb, err := datagen.Table(int64(10000+i), 40, "hivebb")
			if err != nil {
				t.Errorf("storm table: %v", err)
				return
			}
			tb.Name = fmt.Sprintf("storm_%d", i)
			if err := e.RegisterTable(tb); err != nil {
				t.Errorf("storm RegisterTable: %v", err)
				return
			}
			link := querygrid.DefaultLink()
			if i%2 == 0 {
				link = slow
			}
			if err := e.SetLink("hivebb", link); err != nil {
				t.Errorf("storm SetLink: %v", err)
				return
			}
			if err := e.SwitchProfile("hivebb", core.LogicalOp); err != nil {
				t.Errorf("storm SwitchProfile: %v", err)
				return
			}
			if i%3 == 2 {
				// Feed the log, then fold it in (an in-place model mutation
				// plus an explicit generation bump).
				if _, err := e.Query(statements[0]); err != nil {
					t.Errorf("storm Query: %v", err)
					return
				}
				lookups.Add(1)
				if _, err := e.TuneSystem("hivebb", nn.TrainConfig{Iterations: 20, Optimizer: nn.Adam, BatchSize: 32, Seed: 5}); err != nil {
					t.Errorf("storm TuneSystem: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Quiescent check: cached renders vs a purged, from-scratch replan.
	finalGen := genSum(e)
	fresh := make(map[string]string, len(statements))
	cached := make(map[string]string, len(statements))
	for _, sql := range statements {
		out, err := e.Explain(sql)
		if err != nil {
			t.Fatal(err)
		}
		lookups.Add(1)
		cached[sql] = out
	}
	e.opt.Cache.Purge()
	for _, sql := range statements {
		out, err := e.Explain(sql)
		if err != nil {
			t.Fatal(err)
		}
		lookups.Add(1)
		fresh[sql] = out
		if cached[sql] != out {
			t.Errorf("stale plan served for %q after storm:\ncached:\n%s\nfresh:\n%s", sql, cached[sql], out)
		}
	}
	if g := genSum(e); g != finalGen {
		t.Fatalf("generation moved after storm: %d -> %d", finalGen, g)
	}

	// Live check: every observation bracketed at the final generation must
	// match the final render. The mutator finished before the slowest
	// readers, so a healthy run has many such observations.
	atFinal := 0
	for _, buf := range results {
		for _, o := range buf {
			if o.gen != finalGen {
				continue
			}
			atFinal++
			if o.out != fresh[o.sql] {
				t.Errorf("stale plan served at final generation for %q", o.sql)
			}
		}
	}
	t.Logf("observations at final generation: %d", atFinal)
	if atFinal == 0 {
		t.Error("no observations bracketed at the final generation — live staleness check had no coverage")
	}

	s := e.PlanCacheStats()
	if s.Hits+s.Misses != lookups.Load() {
		t.Errorf("shard counters do not reconcile: hits %d + misses %d != lookups %d",
			s.Hits, s.Misses, lookups.Load())
	}
	if s.Stale == 0 {
		t.Error("storm produced no stale lookups — invalidation untested")
	}
}
