package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/faults"
	"intellisphere/internal/optimizer"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
)

// chaosClock is a race-safe manual time source for breaker timeouts.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// chaosRig is a two-remote federation whose hive simulator sits behind a
// fault injector, with a hive-owned table replicated onto spark.
type chaosRig struct {
	eng   *Engine
	hive  *faults.Injector
	clock *chaosClock
}

func newChaosRig(t *testing.T, breaker resilience.BreakerConfig) *chaosRig {
	t.Helper()
	clock := &chaosClock{t: time.Unix(0, 0)}
	if breaker.Clock == nil {
		breaker.Clock = clock.now
	}
	e, err := New(Config{
		Seed: 9,
		Retry: resilience.RetryPolicy{
			Seed:  9,
			Sleep: func(context.Context, time.Duration) error { return nil },
		},
		Breaker: breaker,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Wrap before registration so sub-op training runs through the (still
	// fault-free) injector — trained models match an injection-free build.
	inj := faults.Wrap(h, faults.Config{Seed: 7})
	if _, _, err := e.RegisterRemoteSubOp(inj, remote.EngineHive, subop.InHouseComparable); err != nil {
		t.Fatalf("RegisterRemoteSubOp(hive): %v", err)
	}
	sc := cluster.DefaultHive()
	sc.Name = "spark-vm"
	s, err := remote.NewSpark("spark", sc, remote.Options{NoiseAmp: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(s, remote.EngineSpark, subop.InHouseComparable); err != nil {
		t.Fatalf("RegisterRemoteSubOp(spark): %v", err)
	}
	// Big rows make the transfer dominate, so the optimizer pushes
	// operators down to hive rather than shipping the table to the master.
	tb, err := datagen.Table(10000000, 1000, "hive")
	if err != nil {
		t.Fatal(err)
	}
	tb.Name = "rep_t"
	tb.Replicas = []string{"spark"}
	if err := e.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	return &chaosRig{eng: e, hive: inj, clock: clock}
}

// hiveQuery returns a statement whose healthy plan runs an operator step
// (not just a transfer) on hive, failing the test if every candidate's
// placement avoids hive compute.
func (r *chaosRig) hiveQuery(t *testing.T) string {
	t.Helper()
	candidates := []string{
		"SELECT a1 FROM rep_t WHERE a1 < 1000",
		"SELECT a5, COUNT(a1) FROM rep_t GROUP BY a5",
	}
	for _, sql := range candidates {
		res, err := r.eng.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		for _, s := range res.Plan.Steps {
			if s.System == "hive" && s.Kind != "transfer" {
				return sql
			}
		}
	}
	t.Fatal("no candidate plan places an operator on hive")
	return ""
}

// TestChaosOutageFallbackAndRecovery is the seeded chaos scenario from the
// issue: a full hive outage forces degraded plans over the spark replica,
// enough failures open hive's breaker, and after recovery the breaker
// half-opens and closes again with every transition visible in the stats.
func TestChaosOutageFallbackAndRecovery(t *testing.T) {
	rig := newChaosRig(t, resilience.BreakerConfig{
		FailureThreshold: 2,
		OpenTimeout:      time.Minute,
		SuccessThreshold: 1,
	})
	e := rig.eng
	sql := rig.hiveQuery(t)

	// Healthy baseline.
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	if res.Degraded || len(res.Excluded) != 0 {
		t.Fatalf("healthy query marked degraded: %+v", res)
	}
	if h := e.Health(); h.Status != "ok" || h.OpenCount != 0 {
		t.Fatalf("healthy Health = %+v", h)
	}

	// Outage: every query should still answer, degraded onto spark.
	rig.hive.SetOutage(true)
	for i := 0; i < 3; i++ {
		res, err = e.Query(sql)
		if err != nil {
			t.Fatalf("query %d during outage: %v", i, err)
		}
		if !res.Degraded {
			t.Fatalf("query %d during outage not degraded", i)
		}
		if len(res.Excluded) != 1 || res.Excluded[0] != "hive" {
			t.Fatalf("query %d Excluded = %v", i, res.Excluded)
		}
		for _, s := range res.Plan.Steps {
			if s.System == "hive" {
				t.Fatalf("degraded plan still touches hive:\n%s", res.Plan.Explain())
			}
		}
	}
	if st := e.Breaker("hive").State(); st != resilience.Open {
		t.Fatalf("hive breaker = %v after outage, want Open", st)
	}
	if h := e.Health(); h.Status != "degraded" || h.OpenCount != 1 {
		t.Fatalf("Health during outage = %+v", h)
	}
	rs := e.ResilienceStats()
	if rs.Fallbacks < 3 || rs.DegradedQueries < 3 {
		t.Fatalf("resilience stats during outage = %+v", rs)
	}
	if snap := rs.Breakers["hive"]; snap.Opens < 1 || snap.State != resilience.Open {
		t.Fatalf("hive breaker snapshot = %+v", snap)
	}
	if !rig.hive.Stats().Down || rig.hive.Stats().OutageRejects == 0 {
		t.Fatalf("injector stats = %+v", rig.hive.Stats())
	}
	genOpen := e.Breaker("hive").Generation()

	// Recovery: the breaker half-opens after the timeout; the first
	// successful probe closes it and plans stop excluding hive.
	rig.hive.SetOutage(false)
	rig.clock.advance(2 * time.Minute)
	res, err = e.Query(sql)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if res.Degraded {
		t.Fatalf("recovered query still degraded: %+v", res.Excluded)
	}
	if st := e.Breaker("hive").State(); st != resilience.Closed {
		t.Fatalf("hive breaker = %v after recovery, want Closed", st)
	}
	if gen := e.Breaker("hive").Generation(); gen <= genOpen {
		t.Fatalf("breaker generation did not advance across recovery: %d <= %d", gen, genOpen)
	}
	if h := e.Health(); h.Status != "ok" || h.OpenCount != 0 {
		t.Fatalf("Health after recovery = %+v", h)
	}
}

// TestChaosOpenBreakerShortCircuits verifies that once the breaker is open,
// queries fall back immediately (rejected by ErrOpen) without touching the
// downed remote.
func TestChaosOpenBreakerShortCircuits(t *testing.T) {
	rig := newChaosRig(t, resilience.BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Hour,
	})
	sql := rig.hiveQuery(t)
	rig.hive.SetOutage(true)
	if _, err := rig.eng.Query(sql); err != nil {
		t.Fatalf("query tripping the breaker: %v", err)
	}
	rejectsBefore := rig.eng.ResilienceStats().Breakers["hive"].Rejected
	callsBefore := rig.hive.Stats().Calls
	res, err := rig.eng.Query(sql)
	if err != nil || !res.Degraded {
		t.Fatalf("query behind open breaker: res=%+v err=%v", res, err)
	}
	if got := rig.hive.Stats().Calls; got != callsBefore {
		t.Errorf("open breaker still reached the remote: %d calls, was %d", got, callsBefore)
	}
	if got := rig.eng.ResilienceStats().Breakers["hive"].Rejected; got <= rejectsBefore {
		t.Errorf("no rejections recorded: %d <= %d", got, rejectsBefore)
	}
}

// TestChaosTransientRetries verifies that transient faults are retried with
// the retry counter advancing, and that exhausted retries still degrade
// onto the replica rather than failing the query.
func TestChaosTransientRetries(t *testing.T) {
	rig := newChaosRig(t, resilience.BreakerConfig{
		FailureThreshold: 100, // stay closed; this test isolates retries
		OpenTimeout:      time.Hour,
	})
	sql := rig.hiveQuery(t)
	rig.hive.Configure(faults.Config{Seed: 7, Rates: faults.Rates{Transient: 1}})
	res, err := rig.eng.Query(sql)
	if err != nil {
		t.Fatalf("query under 100%% transient faults: %v", err)
	}
	if !res.Degraded {
		t.Fatal("query under transient exhaustion not degraded")
	}
	rs := rig.eng.ResilienceStats()
	if rs.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2 (MaxAttempts-1)", rs.Retries)
	}

	// Clearing the faults restores normal service on the primary.
	rig.hive.Configure(faults.Config{Seed: 7})
	res, err = rig.eng.Query(sql)
	if err != nil || res.Degraded {
		t.Fatalf("query after clearing faults: res=%+v err=%v", res, err)
	}
}

// TestQueryContextCancellation verifies the context threads through the
// execution path: a cancelled context aborts the query.
func TestQueryContextCancellation(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{10000, 100})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, "SELECT a1 FROM t10000_100"); err == nil {
		t.Fatal("cancelled context did not abort the query")
	}
	if _, err := e.QueryContext(context.Background(), "SELECT a1 FROM t10000_100"); err != nil {
		t.Fatalf("background context query: %v", err)
	}
}

// TestExecuteStepUnknownSystemFirst pins the check ordering in executeStep:
// a plan step naming an unregistered system must fail with the
// unknown-system error even though no estimator exists for it either.
func TestExecuteStepUnknownSystemFirst(t *testing.T) {
	e := newEngine(t)
	_, err := e.executeStep(context.Background(), &optimizer.Step{Kind: "scan", System: "ghost"}, &QueryResult{})
	if err == nil || !strings.Contains(err.Error(), `unknown system "ghost"`) {
		t.Fatalf("err = %v, want unknown-system error", err)
	}
}

// TestExecuteStepSortClamps covers the sort-step path: non-positive result
// shapes are clamped to one row of one byte and the probe still runs.
func TestExecuteStepSortClamps(t *testing.T) {
	e := newEngine(t)
	for _, shape := range []struct{ rows, size float64 }{{0, 0}, {-5, -5}, {100, 8}} {
		got, err := e.executeStep(context.Background(), &optimizer.Step{
			Kind: "sort", System: "teradata", Rows: shape.rows, RowSize: shape.size,
		}, &QueryResult{})
		if err != nil {
			t.Fatalf("sort step (%v rows): %v", shape.rows, err)
		}
		if got <= 0 {
			t.Errorf("sort step (%v rows) elapsed = %v, want > 0", shape.rows, got)
		}
	}
}

// TestFallbackDisabled verifies DisableFallback surfaces the step failure
// instead of re-planning.
func TestFallbackDisabled(t *testing.T) {
	clock := &chaosClock{t: time.Unix(0, 0)}
	e, err := New(Config{
		Seed:            9,
		DisableFallback: true,
		Breaker:         resilience.BreakerConfig{Clock: clock.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.Wrap(h, faults.Config{Seed: 7})
	if _, _, err := e.RegisterRemoteSubOp(inj, remote.EngineHive, subop.InHouseComparable); err != nil {
		t.Fatal(err)
	}
	registerTables(t, e, "hive", ts{10000, 100})
	inj.SetOutage(true)
	if _, err := e.Query("SELECT a1 FROM t10000_100"); err == nil {
		t.Fatal("query against downed remote succeeded with fallback disabled")
	}
}
