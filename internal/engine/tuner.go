package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/modelver"
	"intellisphere/internal/nn"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/trace"
)

// This file closes the adaptivity loop the paper leaves to operations:
// the accuracy windows (estimate vs. observed, Figure 3's logging phase)
// detect when a remote's cost model has drifted, and the tuner retrains the
// affected logical-op models from their execution logs — into a *candidate*
// copy, never the serving model. The candidate is shadow-scored against the
// live model on a holdout of the most recent logged executions and promoted
// through the copy-on-write estimator registry only when it measurably
// improves; the registry generation bump invalidates cached plans for free.
// Every promotion archives the model it replaced, so RollbackModel can
// restore the prior version byte-identically.

// Default tuning knobs.
const (
	// DefaultTuneHoldout is how many of the most recent logged executions
	// per model are withheld from candidate training and used to shadow-score
	// candidate against live.
	DefaultTuneHoldout = 8
	// DefaultTuneMinLog is the minimum pending log a model needs — beyond
	// the holdout — before a candidate tune is worth attempting.
	DefaultTuneMinLog = 16
	// DefaultTuneInterval is the tuner's drift poll period.
	DefaultTuneInterval = 30 * time.Second
	// DefaultTuneDebounce is how many consecutive drifting polls a system
	// must accumulate before the tuner retrains it — one bad window snapshot
	// is noise, a streak is drift.
	DefaultTuneDebounce = 2
)

// TuneOptions controls one candidate tune pass.
type TuneOptions struct {
	// Train overrides the retraining configuration. Zero Iterations selects
	// each model's own training config (as restored from its profile).
	Train nn.TrainConfig
	// Holdout is the per-model count of most-recent log records withheld for
	// shadow scoring (0 selects DefaultTuneHoldout).
	Holdout int
	// MinLog is the minimum per-model training log (holdout excluded)
	// required to tune that model (0 selects DefaultTuneMinLog).
	MinLog int
	// MinGain is the fraction by which the candidate's holdout mean q-error
	// must undercut the live model's to promote: candidate < live·(1-MinGain).
	// 0 promotes on any strict improvement; 1 makes promotion impossible
	// (tests use it to pin the rejection path).
	MinGain float64
	// Force promotes the candidate regardless of the holdout verdict
	// (operator override through POST /models).
	Force bool
}

func (o *TuneOptions) normalize() {
	if o.Holdout <= 0 {
		o.Holdout = DefaultTuneHoldout
	}
	if o.MinLog <= 0 {
		o.MinLog = DefaultTuneMinLog
	}
}

// TuneOutcome reports how one candidate tune resolved.
type TuneOutcome struct {
	System string `json:"system"`
	// Promoted reports the candidate replaced the live model.
	Promoted bool `json:"promoted"`
	// Reason is "improved", "forced", "no-improvement", or
	// "insufficient-log" (no model had enough logged executions; no
	// candidate was trained).
	Reason string `json:"reason"`
	// Tuned lists the operator kinds whose models the candidate retrained.
	Tuned []string `json:"tuned,omitempty"`
	// Holdout is the shadow-scoring result (zero when Reason is
	// "insufficient-log").
	Holdout modelver.HoldoutScore `json:"holdout"`
	// Version is the archived version the promotion produced (nil when the
	// candidate was rejected).
	Version *modelver.Version `json:"version,omitempty"`
}

// qErr is the symmetric relative error max(p/a, a/p) used for shadow
// scoring, mirroring the accuracy windows' measure.
func qErr(p, a float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	}
	if a < eps {
		a = eps
	}
	if p > a {
		return p / a
	}
	return a / p
}

// hybridFor resolves a system's estimator as a tunable hybrid profile.
func (e *Engine) hybridFor(system string) (*hybrid.Estimator, error) {
	if system == querygrid.Master {
		return nil, fmt.Errorf("engine: the master's cost model is not tunable")
	}
	est, err := e.Estimator(system)
	if err != nil {
		return nil, err
	}
	h, ok := est.(*hybrid.Estimator)
	if !ok {
		return nil, fmt.Errorf("engine: system %q has no tunable profile", system)
	}
	return h, nil
}

// profileJSON serializes a hybrid estimator's profile — the bytes the
// version store archives and rollback restores.
func profileJSON(h *hybrid.Estimator) ([]byte, error) {
	return json.Marshal(h.Profile())
}

// recordModelVersion archives pre-serialized profile bytes as the system's
// live version and WAL-logs the event (resulting bytes, not the operation:
// replay reproduces IDs, live markers, and the serving estimator without
// the in-memory execution logs tuning consumed). Caller holds tuneMu. A
// non-nil error means the version is archived in memory but not durable.
func (e *Engine) recordModelVersion(system, origin string, profile []byte, holdout *modelver.HoldoutScore) (*modelver.Version, error) {
	v := e.versions.Record(system, origin, profile, holdout, true)
	err := e.logMutation(opModelVersion, modelVersionPayload{
		System: system, Origin: origin, Holdout: holdout, Profile: profile,
	})
	return &v, err
}

// ensureBaseline archives the live profile bytes as the system's initial
// version if no history exists yet, so the first promotion always has a
// rollback target. WAL-logged like every version event.
func (e *Engine) ensureBaseline(system string, live []byte) error {
	if e.versions.Count(system) != 0 {
		return nil
	}
	_, err := e.recordModelVersion(system, modelver.OriginInitial, live, nil)
	return err
}

// tunePair is one (operator kind, live model) the candidate pass considers.
type tunePair struct {
	kind string
	live *logicalop.Model
	cand *logicalop.Model
}

// candidatePairs aligns the live profile's logical models with the
// candidate clone's.
func candidatePairs(live, cand *hybrid.Profile) []tunePair {
	return []tunePair{
		{"join", live.LogicalJoin, cand.LogicalJoin},
		{"aggregation", live.LogicalAgg, cand.LogicalAgg},
		{"scan", live.LogicalScan, cand.LogicalScan},
	}
}

// TuneCandidate runs one drift-remediation pass for a system: clone the
// live costing profile, retrain the clone's logical-op models from the live
// models' execution logs (withholding the most recent records), shadow-score
// candidate against live on the withheld records, and promote the candidate
// through the estimator registry only if it improves (or opts.Force). The
// live model is never mutated; a rejected candidate is discarded whole.
//
// Promotion swaps the registry entry, which bumps the registry generation —
// invalidating every cached plan costed against the old model — and resets
// the system's accuracy windows so the drift signal reflects the new model.
func (e *Engine) TuneCandidate(ctx context.Context, system string, opts TuneOptions) (out *TuneOutcome, err error) {
	opts.normalize()
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	e.tuneAttempts.Inc()

	h, err := e.hybridFor(system)
	if err != nil {
		return nil, err
	}
	// Queued feedback is this pass's training data; land it first.
	e.FlushFeedback()

	_, csp := trace.Start(ctx, "clone")
	liveJSON, err := profileJSON(h)
	if err != nil {
		csp.EndErr(err)
		return nil, fmt.Errorf("engine: serialize live profile for %q: %w", system, err)
	}
	var candProf hybrid.Profile
	if err = json.Unmarshal(liveJSON, &candProf); err != nil {
		csp.EndErr(err)
		return nil, fmt.Errorf("engine: clone profile for %q: %w", system, err)
	}
	csp.End()

	liveProf := h.Profile()
	out = &TuneOutcome{System: system, Reason: "insufficient-log"}
	type scored struct {
		recs []logicalop.Record // holdout records
		live *logicalop.Model
		cand *logicalop.Model
	}
	var holdouts []scored
	for _, p := range candidatePairs(liveProf, &candProf) {
		if p.live == nil || p.cand == nil {
			continue
		}
		recs := p.live.LogRecords()
		if len(recs) < opts.MinLog+opts.Holdout {
			continue
		}
		_, tsp := trace.Start(ctx, "retrain")
		tsp.SetAttr("operator", p.kind)
		tsp.SetInt("log", len(recs))
		// Candidate trains on everything but the holdout tail; the clone's
		// own log is empty (the model wire format excludes it), so seeding
		// transfers exactly the live model's history.
		cut := len(recs) - opts.Holdout
		p.cand.SeedLog(recs[:cut])
		p.cand.RefitAlpha()
		if _, terr := p.cand.OfflineTune(opts.Train); terr != nil {
			tsp.EndErr(terr)
			return nil, fmt.Errorf("engine: tune %q %s candidate: %w", system, p.kind, terr)
		}
		tsp.End()
		out.Tuned = append(out.Tuned, p.kind)
		holdouts = append(holdouts, scored{recs: recs[cut:], live: p.live, cand: p.cand})
	}
	if len(holdouts) == 0 {
		// Nothing retrained: not a rejection, just not enough evidence yet.
		return out, nil
	}

	_, ssp := trace.Start(ctx, "shadow-score")
	var liveQ, candQ float64
	samples := 0
	for _, s := range holdouts {
		for _, rec := range s.recs {
			le, lerr := s.live.Estimate(rec.X)
			ce, cerr := s.cand.Estimate(rec.X)
			if lerr != nil || cerr != nil {
				continue
			}
			liveQ += qErr(le.Seconds, rec.Actual)
			candQ += qErr(ce.Seconds, rec.Actual)
			samples++
		}
	}
	if samples > 0 {
		liveQ /= float64(samples)
		candQ /= float64(samples)
	}
	out.Holdout = modelver.HoldoutScore{Samples: samples, LiveQ: liveQ, CandidateQ: candQ}
	ssp.SetInt("samples", samples)
	ssp.SetFloat("live_q", liveQ)
	ssp.SetFloat("candidate_q", candQ)
	ssp.End()

	improved := samples > 0 && candQ < liveQ*(1-opts.MinGain)
	if !improved && !opts.Force {
		out.Promoted = false
		out.Reason = "no-improvement"
		e.tuneRejections.Inc()
		_, rsp := trace.Start(ctx, "reject")
		rsp.End()
		return out, nil
	}

	_, psp := trace.Start(ctx, "promote")
	candEst, err := hybrid.NewEstimator(&candProf)
	if err != nil {
		psp.EndErr(err)
		return nil, fmt.Errorf("engine: build candidate estimator for %q: %w", system, err)
	}
	candJSON, err := profileJSON(candEst)
	if err != nil {
		psp.EndErr(err)
		return nil, fmt.Errorf("engine: serialize candidate profile for %q: %w", system, err)
	}
	if err = e.ensureBaseline(system, liveJSON); err != nil {
		psp.EndErr(err)
		return nil, err
	}
	// Swapping the registry entry bumps its generation: cached plans costed
	// against the old model stop matching, and the execution hot path's
	// stepStates rebuild onto the new estimator.
	e.estimators.Set(system, candEst)
	hs := out.Holdout
	var verr error
	out.Version, verr = e.recordModelVersion(system, modelver.OriginTuned, candJSON, &hs)
	if verr != nil {
		psp.EndErr(verr)
		return nil, verr
	}
	// The accuracy windows scored the replaced model; clear them so the
	// drift flag reflects the promoted one.
	e.ResetAccuracy(system)
	e.tunePromotions.Inc()
	out.Promoted = true
	if improved {
		out.Reason = "improved"
	} else {
		out.Reason = "forced"
	}
	psp.End()
	return out, nil
}

// ModelVersions lists a system's retained model versions, oldest first.
// Profile bytes are stripped (they can run to megabytes); Size reports each
// version's serialized length.
func (e *Engine) ModelVersions(system string) []modelver.Version {
	vs := e.versions.List(system)
	for i := range vs {
		vs[i].Profile = nil
	}
	return vs
}

// ModelVersionSystems lists the systems with version history, sorted.
func (e *Engine) ModelVersionSystems() []string {
	names := e.versions.Systems()
	sort.Strings(names)
	return names
}

// RollbackModel restores a system's previous model version byte-identically:
// the newest retained version older than the live one is deserialized and
// installed through the estimator registry (generation bump, plan-cache
// invalidation), and the system's accuracy windows reset. The rolled-back
// version stays retained, so rollbacks can walk further into history.
func (e *Engine) RollbackModel(system string) (*modelver.Version, error) {
	e.tuneMu.Lock()
	defer e.tuneMu.Unlock()
	if _, err := e.hybridFor(system); err != nil {
		return nil, err
	}
	prev, ok := e.versions.Prev(system)
	if !ok {
		return nil, fmt.Errorf("engine: system %q has no earlier model version to roll back to", system)
	}
	var prof hybrid.Profile
	if err := json.Unmarshal(prev.Profile, &prof); err != nil {
		return nil, fmt.Errorf("engine: decode archived profile %q v%d: %w", system, prev.ID, err)
	}
	est, err := hybrid.NewEstimator(&prof)
	if err != nil {
		return nil, fmt.Errorf("engine: restore archived profile %q v%d: %w", system, prev.ID, err)
	}
	e.estimators.Set(system, est)
	if err := e.versions.SetLive(system, prev.ID); err != nil {
		return nil, err
	}
	// The WAL record carries the restored profile bytes so replay is
	// self-contained: install the estimator, mark the version live.
	if err := e.logMutation(opModelLive, modelLivePayload{
		System: system, ID: prev.ID, Profile: prev.Profile,
	}); err != nil {
		return nil, err
	}
	e.ResetAccuracy(system)
	e.tuneRollbacks.Inc()
	prev.Live = true
	prev.Profile = nil
	return &prev, nil
}

// TunerConfig tunes the background drift watcher.
type TunerConfig struct {
	// Interval is the drift poll period (0 selects DefaultTuneInterval).
	Interval time.Duration
	// DriftQ is the mean q-error above which a (system, operator) window
	// counts as drifting (0 selects metrics.DefaultDriftQError via the
	// windows' own Drifting flag).
	DriftQ float64
	// Debounce is how many consecutive drifting polls arm a system
	// (0 selects DefaultTuneDebounce).
	Debounce int
	// Cooldown is the minimum gap between tune attempts for one system
	// (0 selects 2×Interval).
	Cooldown time.Duration
	// Tune carries the candidate-tune options each triggered pass uses.
	Tune TuneOptions
}

// Tuner is the background drift watcher: it polls the accuracy windows and
// runs TuneCandidate on systems that stay drifting. One tuner per engine.
type Tuner struct {
	e    *Engine
	cfg  TunerConfig
	stop chan struct{}
	done chan struct{}

	streak   map[string]int
	lastTune map[string]time.Time
}

// StartTuner launches the drift-watch loop and returns its handle. Callers
// own exactly one tuner per engine and must Stop it on shutdown.
func (e *Engine) StartTuner(cfg TunerConfig) *Tuner {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultTuneInterval
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = DefaultTuneDebounce
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * cfg.Interval
	}
	t := &Tuner{
		e:        e,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		streak:   map[string]int{},
		lastTune: map[string]time.Time{},
	}
	go t.loop()
	return t
}

// Stop terminates the watch loop and waits for it to exit. An in-flight
// tune pass completes first.
func (t *Tuner) Stop() {
	close(t.stop)
	<-t.done
}

func (t *Tuner) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.poll()
		}
	}
}

// drifting reports the systems whose accuracy windows currently exceed the
// tuner's drift threshold, from one stats snapshot.
func (t *Tuner) drifting() map[string]bool {
	out := map[string]bool{}
	for key, snap := range t.e.AccuracyStats() {
		i := len(key) - 1
		for i >= 0 && key[i] != '/' {
			i--
		}
		if i <= 0 {
			continue
		}
		system := key[:i]
		if system == querygrid.Master {
			continue
		}
		drift := snap.Drifting
		if t.cfg.DriftQ > 0 {
			drift = snap.Window > 0 && snap.MeanQError > t.cfg.DriftQ
		}
		if drift {
			out[system] = true
		}
	}
	return out
}

// poll advances each system's drift streak and fires a tune pass on those
// that stay drifting past the debounce, respecting the per-system cooldown.
func (t *Tuner) poll() {
	drifting := t.drifting()
	for system := range t.streak {
		if !drifting[system] {
			delete(t.streak, system)
		}
	}
	for system := range drifting {
		t.streak[system]++
		if t.streak[system] < t.cfg.Debounce {
			continue
		}
		if last, ok := t.lastTune[system]; ok && time.Since(last) < t.cfg.Cooldown {
			continue
		}
		t.lastTune[system] = time.Now()
		t.tune(system)
		// A completed pass — promoted (windows reset) or not — restarts the
		// evidence clock.
		delete(t.streak, system)
	}
}

// tune runs one traced candidate pass; the trace lands in the engine's ring
// next to the query traces, so /trace shows retrains inline with serving.
func (t *Tuner) tune(system string) {
	tr := trace.NewOp("tune", "tune "+system)
	ctx := trace.ContextWithSpan(context.Background(), tr.Root)
	out, err := t.e.TuneCandidate(ctx, system, t.cfg.Tune)
	if err == nil && out != nil {
		tr.Root.SetAttr("reason", out.Reason)
		tr.Root.SetAttr("promoted", fmt.Sprintf("%t", out.Promoted))
	}
	tr.Finish(err)
	t.e.traces.Record(tr)
}
