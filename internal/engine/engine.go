// Package engine implements the master ("Teradata") engine of the
// IntelliSphere architecture (Section 2): it owns the catalog of local and
// foreign tables, registers remote systems with their costing profiles,
// orchestrates the training phases (sub-op probing, logical-op workload
// execution), plans every SQL query with the cost-based federated
// optimizer, executes the chosen plan against the remote-system simulators,
// feeds actual execution times back to the learning estimators (Figure 3's
// logging phase), and — when the referenced tables are materialized —
// computes real result rows with the row engine.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"intellisphere/internal/catalog"
	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/nn"
	"intellisphere/internal/optimizer"
	"intellisphere/internal/parallel"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/remote"
	"intellisphere/internal/rowengine"
	"intellisphere/internal/sqlparse"
	"intellisphere/internal/workload"
)

// Config tunes the master engine.
type Config struct {
	// Master is the master engine's own cluster shape; zero value selects a
	// 2-node, 8-core parallel database.
	Master cluster.Config
	// Link is the default QueryGrid link; zero value selects 1 Gbit/s.
	Link querygrid.LinkConfig
	// Seed drives the master's own simulator noise.
	Seed int64
	// Workers bounds the process-wide worker pool used for parallel training
	// and candidate costing. 0 keeps the current setting (GOMAXPROCS by
	// default, or the INTELLISPHERE_WORKERS environment variable); 1 forces
	// serial execution. All results are identical at any worker count.
	Workers int
}

// Engine is the master engine.
type Engine struct {
	mu           sync.Mutex
	cat          *catalog.Catalog
	grid         *querygrid.Grid
	master       remote.System
	remotes      map[string]remote.System
	estimators   map[string]core.Estimator
	materialized map[string]*rowengine.Table
	opt          *optimizer.Optimizer
}

// New builds a master engine, spins up its own execution simulator, and
// calibrates the master's cost model with a sub-op probe run (Teradata's
// own costing "is based on the sub-op costing approach", Section 4).
func New(cfg Config) (*Engine, error) {
	if cfg.Master.Name == "" {
		cfg.Master = cluster.Config{
			Name: querygrid.Master, Nodes: 2, DataNodes: 2, CoresPerNode: 8,
			MemoryPerNode: 64 << 30, DFSBlockBytes: 64 << 20, Replication: 1, MemoryFraction: 0.5,
		}
	}
	if cfg.Link.BandwidthBytesPerSec == 0 {
		cfg.Link = querygrid.DefaultLink()
	}
	if cfg.Workers > 0 {
		parallel.SetWorkers(cfg.Workers)
	}
	master, err := remote.NewRDBMS(querygrid.Master, cfg.Master, remote.Options{Seed: cfg.Seed, NoiseAmp: 0.02})
	if err != nil {
		return nil, fmt.Errorf("engine: build master simulator: %w", err)
	}
	grid, err := querygrid.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cat:          catalog.New(),
		grid:         grid,
		master:       master,
		remotes:      map[string]remote.System{querygrid.Master: master},
		estimators:   map[string]core.Estimator{},
		materialized: map[string]*rowengine.Table{},
	}
	ms, _, err := subop.Train(master, subop.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("engine: calibrate master cost model: %w", err)
	}
	selfEst, err := subop.NewEstimator(ms, remote.EngineHive, subop.InHouseComparable)
	if err != nil {
		return nil, err
	}
	e.estimators[querygrid.Master] = selfEst
	e.opt = &optimizer.Optimizer{Catalog: e.cat, Grid: e.grid, Estimators: e.estimators}
	return e, nil
}

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Grid exposes the QueryGrid model.
func (e *Engine) Grid() *querygrid.Grid { return e.grid }

// Remote returns a registered remote system.
func (e *Engine) Remote(name string) (remote.System, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sys, ok := e.remotes[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown remote system %q", name)
	}
	return sys, nil
}

// Estimator returns the cost estimator registered for a system.
func (e *Engine) Estimator(name string) (core.Estimator, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	est, ok := e.estimators[name]
	if !ok {
		return nil, fmt.Errorf("engine: no estimator for system %q", name)
	}
	return est, nil
}

// Systems lists registered system names (master included), sorted.
func (e *Engine) Systems() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.remotes))
	for name := range e.remotes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterRemote adds a remote system with an already built estimator
// (typically a hybrid.Estimator wrapping its costing profile).
func (e *Engine) RegisterRemote(sys remote.System, est core.Estimator) error {
	if sys == nil || est == nil {
		return fmt.Errorf("engine: remote system and estimator are required")
	}
	name := sys.Name()
	if name == querygrid.Master {
		return fmt.Errorf("engine: %q is reserved for the master", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.remotes[name]; dup {
		return fmt.Errorf("engine: remote %q already registered", name)
	}
	e.remotes[name] = sys
	e.estimators[name] = est
	return nil
}

// RegisterRemoteSubOp registers an openbox remote, running the sub-op probe
// training and wrapping the learned models in a costing profile.
func (e *Engine) RegisterRemoteSubOp(sys remote.System, kind remote.EngineKind, policy subop.ChoicePolicy) (*hybrid.Estimator, *subop.Report, error) {
	ms, rep, err := subop.Train(sys, subop.TrainConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("engine: sub-op training for %q: %w", sys.Name(), err)
	}
	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.SubOp,
		Policy: policy, SubOpModels: ms,
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// LogicalTrainOptions controls blackbox training.
type LogicalTrainOptions struct {
	// JoinPairs caps the join training pairs (default 250; the paper used
	// 1000, which works too but takes proportionally longer).
	JoinPairs int
	// TrainScan additionally trains a scan (filter/project) model — the
	// paper trains join and aggregation; scans are a cheap extension of the
	// same methodology.
	TrainScan bool
	// Config overrides the per-model logical-op configuration; zero value
	// uses DefaultConfig for each operator's dimensionality.
	Join, Agg, Scan logicalop.Config
	// Seed drives workload sampling and network initialization.
	Seed int64
}

// LogicalTrainReport summarizes a blackbox training run.
type LogicalTrainReport struct {
	JoinQueries, AggQueries, ScanQueries    int
	JoinTrainSec, AggTrainSec, ScanTrainSec float64 // simulated remote time spent
	JoinResult, AggResult, ScanResult       *nn.TrainResult
}

// RegisterRemoteLogicalOp registers a blackbox remote: it generates the
// Figure 10 training workloads over the system's registered tables,
// executes them on the remote (expensive — this is the paper's point),
// trains the per-operator neural models, and wraps them in a profile.
func (e *Engine) RegisterRemoteLogicalOp(sys remote.System, kind remote.EngineKind, opts LogicalTrainOptions) (*hybrid.Estimator, *LogicalTrainReport, error) {
	tables := e.cat.BySystem(sys.Name())
	if len(tables) < 2 {
		return nil, nil, fmt.Errorf("engine: logical-op training needs at least 2 tables registered for %q, have %d", sys.Name(), len(tables))
	}
	if opts.JoinPairs <= 0 {
		opts.JoinPairs = 250
	}
	rep := &LogicalTrainReport{}

	aggQs, err := workload.AggTrainingSet(tables)
	if err != nil {
		return nil, nil, err
	}
	aggRun, err := workload.RunAggSet(sys, aggQs)
	if err != nil {
		return nil, nil, err
	}
	rep.AggQueries = len(aggQs)
	rep.AggTrainSec = aggRun.TotalSec
	aggCfg := opts.Agg
	if aggCfg.NN.Network.InputDim == 0 {
		aggCfg = logicalop.DefaultConfig(4, opts.Seed+1)
	}
	aggModel, aggRes, err := logicalop.Train("aggregation", plan.AggDimNames(), aggRun.X, aggRun.Y, aggCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.AggResult = aggRes

	joinQs, err := workload.JoinTrainingSet(tables, opts.JoinPairs, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	joinRun, err := workload.RunJoinSet(sys, joinQs)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinQueries = len(joinQs)
	rep.JoinTrainSec = joinRun.TotalSec
	joinCfg := opts.Join
	if joinCfg.NN.Network.InputDim == 0 {
		joinCfg = logicalop.DefaultConfig(7, opts.Seed+2)
	}
	joinModel, joinRes, err := logicalop.Train("join", plan.JoinDimNames(), joinRun.X, joinRun.Y, joinCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinResult = joinRes

	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.LogicalOp,
		LogicalJoin: joinModel, LogicalAgg: aggModel,
	}

	if opts.TrainScan {
		scanQs, err := workload.ScanTrainingSet(tables)
		if err != nil {
			return nil, nil, err
		}
		scanRun, err := workload.RunScanSet(sys, scanQs)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanQueries = len(scanQs)
		rep.ScanTrainSec = scanRun.TotalSec
		scanCfg := opts.Scan
		if scanCfg.NN.Network.InputDim == 0 {
			scanCfg = logicalop.DefaultConfig(4, opts.Seed+3)
		}
		scanModel, scanRes, err := logicalop.Train("scan", logicalop.ScanDimNames(), scanRun.X, scanRun.Y, scanCfg)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanResult = scanRes
		prof.LogicalScan = scanModel
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// RegisterTable adds a table (local or foreign) to the catalog. Foreign
// tables must name a registered remote system.
func (e *Engine) RegisterTable(t *catalog.Table) error {
	if t.System != "" {
		e.mu.Lock()
		_, ok := e.remotes[t.System]
		e.mu.Unlock()
		if !ok {
			return fmt.Errorf("engine: table %q references unregistered system %q", t.Name, t.System)
		}
	}
	return e.cat.Register(t)
}

// Materialize generates actual rows for a registered table so queries over
// it return results, not just costs. Limited to small tables.
func (e *Engine) Materialize(name string) error {
	t, err := e.cat.Lookup(name)
	if err != nil {
		return err
	}
	tb, err := rowengine.Materialize(name, t.Rows)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.materialized[name] = tb
	return nil
}

// QueryResult is one executed federated query.
type QueryResult struct {
	Plan *optimizer.Plan
	// ActualSec is the total simulated execution time (operators plus
	// transfers).
	ActualSec float64
	// StepActuals aligns with Plan.Steps.
	StepActuals []float64
	// Rows holds real results when every referenced table is materialized;
	// nil otherwise (statistics-only execution).
	Rows *rowengine.Result
}

// Explain plans a query and renders the plan without executing it.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := e.opt.Plan(stmt)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Query plans and executes a SQL statement across the federation.
func (e *Engine) Query(sql string) (*QueryResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.opt.Plan(stmt)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Plan: p}
	for _, step := range p.Steps {
		actual, err := e.executeStep(step)
		if err != nil {
			return nil, err
		}
		res.StepActuals = append(res.StepActuals, actual)
		res.ActualSec += actual
	}
	// Row-level answers when every referenced table is materialized.
	if rows, ok := e.materializedFor(stmt); ok {
		out, err := rowengine.Execute(stmt, rows)
		if err != nil {
			return nil, fmt.Errorf("engine: row execution: %w", err)
		}
		res.Rows = out
	}
	return res, nil
}

// executeStep runs one plan step on the simulators and feeds the actual
// cost back to the estimator (the logging phase of Figure 3).
func (e *Engine) executeStep(step optimizer.Step) (float64, error) {
	if step.Kind == "transfer" {
		// Network behaviour is learned elsewhere (Section 2's scope); the
		// grid estimate doubles as the simulated actual.
		return step.EstimatedSec, nil
	}
	e.mu.Lock()
	sys, ok := e.remotes[step.System]
	est := e.estimators[step.System]
	e.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("engine: plan step targets unknown system %q", step.System)
	}
	var ex remote.Execution
	var err error
	switch step.Kind {
	case "join":
		ex, err = sys.ExecuteJoin(*step.Join)
	case "aggregation":
		ex, err = sys.ExecuteAgg(*step.Agg)
	case "scan":
		ex, err = sys.ExecuteScan(*step.Scan)
	case "sort":
		// The final ORDER BY runs where the result landed; a sort probe
		// (read + sort of the result shape) is exactly that work.
		rows, size := step.Rows, step.RowSize
		if rows < 1 {
			rows = 1
		}
		if size < 1 {
			size = 1
		}
		ex, err = sys.ExecuteProbe(remote.Probe{Target: remote.Sort, Records: rows, RecordSize: size})
	default:
		return 0, fmt.Errorf("engine: unknown step kind %q", step.Kind)
	}
	if err != nil {
		return 0, fmt.Errorf("engine: execute %s on %q: %w", step.Kind, step.System, err)
	}
	if fb, ok := est.(core.Feedback); ok {
		switch step.Kind {
		case "join":
			fb.ObserveJoin(*step.Join, ex.ElapsedSec)
		case "aggregation":
			fb.ObserveAgg(*step.Agg, ex.ElapsedSec)
		case "scan":
			fb.ObserveScan(*step.Scan, ex.ElapsedSec)
		}
	}
	return ex.ElapsedSec, nil
}

// materializedFor collects the materialized tables a statement references;
// ok is false if any is missing.
func (e *Engine) materializedFor(stmt *sqlparse.SelectStmt) (map[string]*rowengine.Table, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := []string{stmt.From.Name}
	for i := range stmt.Joins {
		names = append(names, stmt.Joins[i].Table.Name)
	}
	out := map[string]*rowengine.Table{}
	for _, n := range names {
		t, ok := e.materialized[n]
		if !ok {
			return nil, false
		}
		out[n] = t
	}
	return out, true
}
