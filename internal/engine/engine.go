// Package engine implements the master ("Teradata") engine of the
// IntelliSphere architecture (Section 2): it owns the catalog of local and
// foreign tables, registers remote systems with their costing profiles,
// orchestrates the training phases (sub-op probing, logical-op workload
// execution), plans every SQL query with the cost-based federated
// optimizer, executes the chosen plan against the remote-system simulators,
// feeds actual execution times back to the learning estimators (Figure 3's
// logging phase), and — when the referenced tables are materialized —
// computes real result rows with the row engine.
package engine

import (
	"fmt"
	"time"

	"intellisphere/internal/catalog"
	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/metrics"
	"intellisphere/internal/nn"
	"intellisphere/internal/optimizer"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/registry"
	"intellisphere/internal/remote"
	"intellisphere/internal/rowengine"
	"intellisphere/internal/sqlparse"
	"intellisphere/internal/workload"
)

// Config tunes the master engine.
type Config struct {
	// Master is the master engine's own cluster shape; zero value selects a
	// 2-node, 8-core parallel database.
	Master cluster.Config
	// Link is the default QueryGrid link; zero value selects 1 Gbit/s.
	Link querygrid.LinkConfig
	// Seed drives the master's own simulator noise.
	Seed int64
	// Workers bounds this engine's worker fan-out for parallel training and
	// candidate costing. 0 uses the process default (GOMAXPROCS, or the
	// INTELLISPHERE_WORKERS environment variable); 1 forces serial execution.
	// The setting is scoped to the engine — two engines with different
	// Workers never affect each other. All results are identical at any
	// worker count.
	Workers int
	// PlanCacheSize bounds the optimizer's LRU plan cache. 0 selects the
	// default (256 entries); negative disables caching entirely.
	PlanCacheSize int
}

// Engine is the master engine. The remote-system, estimator, and
// materialized-table registries are read-mostly copy-on-write maps, so the
// serving path (Query/Explain from many goroutines) never takes a lock to
// look one up; registration and materialization are the only writers.
type Engine struct {
	cat          *catalog.Catalog
	grid         *querygrid.Grid
	master       remote.System
	remotes      *registry.Map[remote.System]
	estimators   *registry.Map[core.Estimator]
	materialized *registry.Map[*rowengine.Table]
	opt          *optimizer.Optimizer
	fb           *feedbackBatcher
	stmts        *stmtCache // nil when caching is disabled
	workers      int

	queries     metrics.Counter
	queryErrors metrics.Counter
	parseHist   *metrics.Histogram
	planHist    *metrics.Histogram
	executeHist *metrics.Histogram
}

// New builds a master engine, spins up its own execution simulator, and
// calibrates the master's cost model with a sub-op probe run (Teradata's
// own costing "is based on the sub-op costing approach", Section 4).
func New(cfg Config) (*Engine, error) {
	if cfg.Master.Name == "" {
		cfg.Master = cluster.Config{
			Name: querygrid.Master, Nodes: 2, DataNodes: 2, CoresPerNode: 8,
			MemoryPerNode: 64 << 30, DFSBlockBytes: 64 << 20, Replication: 1, MemoryFraction: 0.5,
		}
	}
	if cfg.Link.BandwidthBytesPerSec == 0 {
		cfg.Link = querygrid.DefaultLink()
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	master, err := remote.NewRDBMS(querygrid.Master, cfg.Master, remote.Options{Seed: cfg.Seed, NoiseAmp: 0.02})
	if err != nil {
		return nil, fmt.Errorf("engine: build master simulator: %w", err)
	}
	grid, err := querygrid.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cat:          catalog.New(),
		grid:         grid,
		master:       master,
		remotes:      registry.New[remote.System](),
		estimators:   registry.New[core.Estimator](),
		materialized: registry.New[*rowengine.Table](),
		fb:           newFeedbackBatcher(),
		workers:      cfg.Workers,
		parseHist:    metrics.NewLatencyHistogram(),
		planHist:     metrics.NewLatencyHistogram(),
		executeHist:  metrics.NewLatencyHistogram(),
	}
	e.remotes.Set(querygrid.Master, master)
	ms, _, err := subop.Train(master, subop.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("engine: calibrate master cost model: %w", err)
	}
	selfEst, err := subop.NewEstimator(ms, remote.EngineHive, subop.InHouseComparable)
	if err != nil {
		return nil, err
	}
	e.estimators.Set(querygrid.Master, selfEst)
	var cache *optimizer.PlanCache
	if cfg.PlanCacheSize >= 0 {
		cache = optimizer.NewPlanCache(cfg.PlanCacheSize)
		e.stmts = newStmtCache(2 * cfg.PlanCacheSize)
	}
	e.opt = &optimizer.Optimizer{
		Catalog: e.cat, Grid: e.grid, Estimators: e.estimators,
		Workers: cfg.Workers, Cache: cache,
	}
	return e, nil
}

// PlanCacheStats reports the plan cache's effectiveness counters (zero-value
// stats when caching is disabled).
func (e *Engine) PlanCacheStats() optimizer.CacheStats {
	if e.opt.Cache == nil {
		return optimizer.CacheStats{}
	}
	return e.opt.Cache.Stats()
}

// Stats is a point-in-time snapshot of serving health: query counts, the
// per-stage latency histograms (wall clock of the serving process, not
// simulated time), plan-cache effectiveness, and the feedback backlog.
type Stats struct {
	Queries         uint64                    `json:"queries"`
	QueryErrors     uint64                    `json:"query_errors"`
	Parse           metrics.HistogramSnapshot `json:"parse"`
	Plan            metrics.HistogramSnapshot `json:"plan"`
	Execute         metrics.HistogramSnapshot `json:"execute"`
	PlanCache       optimizer.CacheStats      `json:"plan_cache"`
	FeedbackBacklog int                       `json:"feedback_backlog"`
}

// Stats snapshots the engine's serving metrics.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:         e.queries.Value(),
		QueryErrors:     e.queryErrors.Value(),
		Parse:           e.parseHist.Snapshot(),
		Plan:            e.planHist.Snapshot(),
		Execute:         e.executeHist.Snapshot(),
		PlanCache:       e.PlanCacheStats(),
		FeedbackBacklog: e.FeedbackBacklog(),
	}
}

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Grid exposes the QueryGrid model.
func (e *Engine) Grid() *querygrid.Grid { return e.grid }

// Remote returns a registered remote system. The lookup is lock-free.
func (e *Engine) Remote(name string) (remote.System, error) {
	sys, ok := e.remotes.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown remote system %q", name)
	}
	return sys, nil
}

// Estimator returns the cost estimator registered for a system. The lookup
// is lock-free.
func (e *Engine) Estimator(name string) (core.Estimator, error) {
	est, ok := e.estimators.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: no estimator for system %q", name)
	}
	return est, nil
}

// Systems lists registered system names (master included), sorted.
func (e *Engine) Systems() []string { return e.remotes.Names() }

// RegisterRemote adds a remote system with an already built estimator
// (typically a hybrid.Estimator wrapping its costing profile).
func (e *Engine) RegisterRemote(sys remote.System, est core.Estimator) error {
	if sys == nil || est == nil {
		return fmt.Errorf("engine: remote system and estimator are required")
	}
	name := sys.Name()
	if name == querygrid.Master {
		return fmt.Errorf("engine: %q is reserved for the master", name)
	}
	if !e.remotes.SetIfAbsent(name, sys) {
		return fmt.Errorf("engine: remote %q already registered", name)
	}
	e.estimators.Set(name, est)
	return nil
}

// RegisterRemoteSubOp registers an openbox remote, running the sub-op probe
// training and wrapping the learned models in a costing profile.
func (e *Engine) RegisterRemoteSubOp(sys remote.System, kind remote.EngineKind, policy subop.ChoicePolicy) (*hybrid.Estimator, *subop.Report, error) {
	ms, rep, err := subop.Train(sys, subop.TrainConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("engine: sub-op training for %q: %w", sys.Name(), err)
	}
	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.SubOp,
		Policy: policy, SubOpModels: ms,
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// LogicalTrainOptions controls blackbox training.
type LogicalTrainOptions struct {
	// JoinPairs caps the join training pairs (default 250; the paper used
	// 1000, which works too but takes proportionally longer).
	JoinPairs int
	// TrainScan additionally trains a scan (filter/project) model — the
	// paper trains join and aggregation; scans are a cheap extension of the
	// same methodology.
	TrainScan bool
	// Config overrides the per-model logical-op configuration; zero value
	// uses DefaultConfig for each operator's dimensionality.
	Join, Agg, Scan logicalop.Config
	// Seed drives workload sampling and network initialization.
	Seed int64
}

// LogicalTrainReport summarizes a blackbox training run.
type LogicalTrainReport struct {
	JoinQueries, AggQueries, ScanQueries    int
	JoinTrainSec, AggTrainSec, ScanTrainSec float64 // simulated remote time spent
	JoinResult, AggResult, ScanResult       *nn.TrainResult
}

// scopeWorkers defaults a training config's worker bound to the engine's own
// setting, so Config.Workers governs training fan-out without touching the
// process-wide pool. An explicit per-config Workers wins.
func (e *Engine) scopeWorkers(cfg *logicalop.Config) {
	if cfg.NN.Train.Workers == 0 {
		cfg.NN.Train.Workers = e.workers
	}
}

// RegisterRemoteLogicalOp registers a blackbox remote: it generates the
// Figure 10 training workloads over the system's registered tables,
// executes them on the remote (expensive — this is the paper's point),
// trains the per-operator neural models, and wraps them in a profile.
func (e *Engine) RegisterRemoteLogicalOp(sys remote.System, kind remote.EngineKind, opts LogicalTrainOptions) (*hybrid.Estimator, *LogicalTrainReport, error) {
	tables := e.cat.BySystem(sys.Name())
	if len(tables) < 2 {
		return nil, nil, fmt.Errorf("engine: logical-op training needs at least 2 tables registered for %q, have %d", sys.Name(), len(tables))
	}
	if opts.JoinPairs <= 0 {
		opts.JoinPairs = 250
	}
	rep := &LogicalTrainReport{}

	aggQs, err := workload.AggTrainingSet(tables)
	if err != nil {
		return nil, nil, err
	}
	aggRun, err := workload.RunAggSetN(e.workers, sys, aggQs)
	if err != nil {
		return nil, nil, err
	}
	rep.AggQueries = len(aggQs)
	rep.AggTrainSec = aggRun.TotalSec
	aggCfg := opts.Agg
	if aggCfg.NN.Network.InputDim == 0 {
		aggCfg = logicalop.DefaultConfig(4, opts.Seed+1)
	}
	e.scopeWorkers(&aggCfg)
	aggModel, aggRes, err := logicalop.Train("aggregation", plan.AggDimNames(), aggRun.X, aggRun.Y, aggCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.AggResult = aggRes

	joinQs, err := workload.JoinTrainingSet(tables, opts.JoinPairs, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	joinRun, err := workload.RunJoinSetN(e.workers, sys, joinQs)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinQueries = len(joinQs)
	rep.JoinTrainSec = joinRun.TotalSec
	joinCfg := opts.Join
	if joinCfg.NN.Network.InputDim == 0 {
		joinCfg = logicalop.DefaultConfig(7, opts.Seed+2)
	}
	e.scopeWorkers(&joinCfg)
	joinModel, joinRes, err := logicalop.Train("join", plan.JoinDimNames(), joinRun.X, joinRun.Y, joinCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinResult = joinRes

	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.LogicalOp,
		LogicalJoin: joinModel, LogicalAgg: aggModel,
	}

	if opts.TrainScan {
		scanQs, err := workload.ScanTrainingSet(tables)
		if err != nil {
			return nil, nil, err
		}
		scanRun, err := workload.RunScanSetN(e.workers, sys, scanQs)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanQueries = len(scanQs)
		rep.ScanTrainSec = scanRun.TotalSec
		scanCfg := opts.Scan
		if scanCfg.NN.Network.InputDim == 0 {
			scanCfg = logicalop.DefaultConfig(4, opts.Seed+3)
		}
		e.scopeWorkers(&scanCfg)
		scanModel, scanRes, err := logicalop.Train("scan", logicalop.ScanDimNames(), scanRun.X, scanRun.Y, scanCfg)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanResult = scanRes
		prof.LogicalScan = scanModel
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// RegisterTable adds a table (local or foreign) to the catalog. Foreign
// tables must name a registered remote system.
func (e *Engine) RegisterTable(t *catalog.Table) error {
	if t.System != "" {
		if _, ok := e.remotes.Get(t.System); !ok {
			return fmt.Errorf("engine: table %q references unregistered system %q", t.Name, t.System)
		}
	}
	return e.cat.Register(t)
}

// Materialize generates actual rows for a registered table so queries over
// it return results, not just costs. Limited to small tables.
func (e *Engine) Materialize(name string) error {
	t, err := e.cat.Lookup(name)
	if err != nil {
		return err
	}
	tb, err := rowengine.Materialize(name, t.Rows)
	if err != nil {
		return err
	}
	e.materialized.Set(name, tb)
	return nil
}

// QueryResult is one executed federated query.
type QueryResult struct {
	Plan *optimizer.Plan
	// ActualSec is the total simulated execution time (operators plus
	// transfers).
	ActualSec float64
	// StepActuals aligns with Plan.Steps.
	StepActuals []float64
	// Rows holds real results when every referenced table is materialized;
	// nil otherwise (statistics-only execution).
	Rows *rowengine.Result
}

// Explain plans a query and renders the plan without executing it. Repeated
// identical statements hit the plan cache and render byte-identical output.
func (e *Engine) Explain(sql string) (string, error) {
	stmt, err := e.parse(sql)
	if err != nil {
		return "", err
	}
	p, err := e.plan(stmt)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// parse times statement parsing into the parse-stage histogram. Parsed
// statements are immutable downstream, so repeats of the same text are
// served from the statement LRU.
func (e *Engine) parse(sql string) (*sqlparse.SelectStmt, error) {
	start := time.Now()
	defer func() { e.parseHist.Observe(time.Since(start)) }()
	if e.stmts != nil {
		if stmt, ok := e.stmts.get(sql); ok {
			return stmt, nil
		}
	}
	stmt, err := sqlparse.Parse(sql)
	if err == nil && e.stmts != nil {
		e.stmts.put(sql, stmt)
	}
	return stmt, err
}

// plan times planning (cache hits included) into the plan-stage histogram.
func (e *Engine) plan(stmt *sqlparse.SelectStmt) (*optimizer.Plan, error) {
	start := time.Now()
	p, err := e.opt.Plan(stmt)
	e.planHist.Observe(time.Since(start))
	return p, err
}

// Query plans and executes a SQL statement across the federation. It is safe
// for concurrent use: plans come from the (lock-free-read) optimizer, step
// execution only reads registry snapshots, and estimator feedback is queued
// to the batcher rather than applied inline.
func (e *Engine) Query(sql string) (*QueryResult, error) {
	e.queries.Inc()
	res, err := e.query(sql)
	if err != nil {
		e.queryErrors.Inc()
	}
	return res, err
}

func (e *Engine) query(sql string) (*QueryResult, error) {
	stmt, err := e.parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.plan(stmt)
	if err != nil {
		return nil, err
	}
	execStart := time.Now()
	defer func() { e.executeHist.Observe(time.Since(execStart)) }()
	res := &QueryResult{Plan: p}
	for _, step := range p.Steps {
		actual, err := e.executeStep(step)
		if err != nil {
			return nil, err
		}
		res.StepActuals = append(res.StepActuals, actual)
		res.ActualSec += actual
	}
	// Row-level answers when every referenced table is materialized.
	if rows, ok := e.materializedFor(stmt); ok {
		out, err := rowengine.Execute(stmt, rows)
		if err != nil {
			return nil, fmt.Errorf("engine: row execution: %w", err)
		}
		res.Rows = out
	}
	return res, nil
}

// executeStep runs one plan step on the simulators and queues the actual
// cost for delivery to the estimator (the logging phase of Figure 3).
func (e *Engine) executeStep(step optimizer.Step) (float64, error) {
	if step.Kind == "transfer" {
		// Network behaviour is learned elsewhere (Section 2's scope); the
		// grid estimate doubles as the simulated actual.
		return step.EstimatedSec, nil
	}
	sys, ok := e.remotes.Get(step.System)
	est, _ := e.estimators.Get(step.System)
	if !ok {
		return 0, fmt.Errorf("engine: plan step targets unknown system %q", step.System)
	}
	var ex remote.Execution
	var err error
	switch step.Kind {
	case "join":
		ex, err = sys.ExecuteJoin(*step.Join)
	case "aggregation":
		ex, err = sys.ExecuteAgg(*step.Agg)
	case "scan":
		ex, err = sys.ExecuteScan(*step.Scan)
	case "sort":
		// The final ORDER BY runs where the result landed; a sort probe
		// (read + sort of the result shape) is exactly that work.
		rows, size := step.Rows, step.RowSize
		if rows < 1 {
			rows = 1
		}
		if size < 1 {
			size = 1
		}
		ex, err = sys.ExecuteProbe(remote.Probe{Target: remote.Sort, Records: rows, RecordSize: size})
	default:
		return 0, fmt.Errorf("engine: unknown step kind %q", step.Kind)
	}
	if err != nil {
		return 0, fmt.Errorf("engine: execute %s on %q: %w", step.Kind, step.System, err)
	}
	if fb, ok := est.(core.Feedback); ok {
		it := feedbackItem{est: fb, kind: step.Kind, actualSec: ex.ElapsedSec}
		switch step.Kind {
		case "join":
			it.join = *step.Join
		case "aggregation":
			it.agg = *step.Agg
		case "scan":
			it.scan = *step.Scan
		}
		e.fb.enqueue(it)
	}
	return ex.ElapsedSec, nil
}

// materializedFor collects the materialized tables a statement references;
// ok is false if any is missing.
func (e *Engine) materializedFor(stmt *sqlparse.SelectStmt) (map[string]*rowengine.Table, bool) {
	names := []string{stmt.From.Name}
	for i := range stmt.Joins {
		names = append(names, stmt.Joins[i].Table.Name)
	}
	out := map[string]*rowengine.Table{}
	for _, n := range names {
		t, ok := e.materialized.Get(n)
		if !ok {
			return nil, false
		}
		out[n] = t
	}
	return out, true
}
