// Package engine implements the master ("Teradata") engine of the
// IntelliSphere architecture (Section 2): it owns the catalog of local and
// foreign tables, registers remote systems with their costing profiles,
// orchestrates the training phases (sub-op probing, logical-op workload
// execution), plans every SQL query with the cost-based federated
// optimizer, executes the chosen plan against the remote-system simulators,
// feeds actual execution times back to the learning estimators (Figure 3's
// logging phase), and — when the referenced tables are materialized —
// computes real result rows with the row engine.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intellisphere/internal/catalog"
	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/metrics"
	"intellisphere/internal/modelver"
	"intellisphere/internal/nn"
	"intellisphere/internal/obs"
	"intellisphere/internal/optimizer"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/registry"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
	"intellisphere/internal/rowengine"
	"intellisphere/internal/sqlparse"
	"intellisphere/internal/trace"
	"intellisphere/internal/workload"
)

// Config tunes the master engine.
type Config struct {
	// Master is the master engine's own cluster shape; zero value selects a
	// 2-node, 8-core parallel database.
	Master cluster.Config
	// Link is the default QueryGrid link; zero value selects 1 Gbit/s.
	Link querygrid.LinkConfig
	// Seed drives the master's own simulator noise.
	Seed int64
	// Workers bounds this engine's worker fan-out for parallel training and
	// candidate costing. 0 uses the process default (GOMAXPROCS, or the
	// INTELLISPHERE_WORKERS environment variable); 1 forces serial execution.
	// The setting is scoped to the engine — two engines with different
	// Workers never affect each other. All results are identical at any
	// worker count.
	Workers int
	// PlanCacheSize bounds the optimizer's LRU plan cache. 0 selects the
	// default (256 entries); negative disables caching entirely.
	PlanCacheSize int
	// Retry governs the retry loop around every remote plan-step call.
	// The zero value selects the resilience defaults (3 attempts, 25ms
	// base backoff doubling to 1s, deterministic ±20% jitter).
	Retry resilience.RetryPolicy
	// Breaker configures the per-remote circuit breakers. The zero value
	// selects the resilience defaults (open after 5 consecutive
	// infrastructural failures, half-open probe after 10s).
	Breaker resilience.BreakerConfig
	// DisableFallback turns off degraded re-planning: a failed remote
	// fails the query instead of re-planning around the failed system.
	DisableFallback bool
	// TraceBuffer bounds the ring of recent query traces kept for /trace.
	// 0 selects the default (trace.DefaultRingSize); negative disables the
	// buffer entirely (QueryTraced still returns its trace inline).
	TraceBuffer int
	// FeedbackCap bounds the estimator-feedback queue: beyond it the oldest
	// pending observations are dropped (and counted) rather than growing the
	// queue without limit behind a slow estimator. 0 selects the default
	// (4096); negative disables the cap.
	FeedbackCap int
	// ModelHistory bounds the per-system model version history kept for
	// rollback. 0 selects the default (modelver.DefaultHistory).
	ModelHistory int
}

// Engine is the master engine. The remote-system, estimator, and
// materialized-table registries are read-mostly copy-on-write maps, so the
// serving path (Query/Explain from many goroutines) never takes a lock to
// look one up; registration and materialization are the only writers.
type Engine struct {
	cat          *catalog.Catalog
	grid         *querygrid.Grid
	master       remote.System
	remotes      *registry.Map[remote.System]
	estimators   *registry.Map[core.Estimator]
	materialized *registry.Map[*rowengine.Table]
	opt          *optimizer.Optimizer
	fb           *feedbackBatcher
	stmts        *stmtCache // nil when caching is disabled
	workers      int

	breakers *resilience.Group
	retry    resilience.RetryPolicy
	fallback bool

	traces *trace.Ring // nil when the trace buffer is disabled
	// events is the optional wide-event recorder (see internal/obs). nil —
	// the default — keeps the serving path identical to an uninstrumented
	// build: one atomic load per query, no clock reads, no allocations.
	events atomic.Pointer[obs.Recorder]
	// accuracy holds one rolling estimator-accuracy window per
	// (system, operator kind), keyed "system/kind". Lock-free reads on the
	// serving path; windows are created on first observation.
	accuracy *registry.Map[*metrics.Accuracy]
	// stepStates caches per-(system, operator kind) hot-path state — the
	// retry salt and the accuracy-window pointer — behind an atomic
	// snapshot, so executeStep does not rebuild the "system/kind" key (two
	// string concatenations per step) on every executed step. Writers
	// (first execution of a new pair) serialize on stepMu and install a
	// copied map, mirroring the registry.Map idiom.
	stepStates atomic.Pointer[map[stepKey]*stepState]
	stepMu     sync.Mutex

	// versions archives serialized costing profiles per system — the model
	// lifecycle behind candidate promotion and rollback.
	versions *modelver.Store
	// dur is the attached durability sink (nil until OpenDurability): every
	// registry mutation is WAL-logged through it before its caller is acked.
	dur atomic.Pointer[Durability]
	// mutMu serializes the non-model registry mutations (table registration,
	// link changes, materialization) so their WAL append order matches their
	// apply order. Model mutations serialize under tuneMu instead; snapshot
	// capture holds both.
	mutMu sync.Mutex
	// tuneMu serializes candidate tuning, promotion, and rollback for the
	// whole engine: the tuner, /models POSTs, and tests may race, and two
	// concurrent promotions for one system would corrupt the version
	// lineage.
	tuneMu sync.Mutex

	queries        metrics.Counter
	queryErrors    metrics.Counter
	retries        metrics.Counter
	fallbacks      metrics.Counter
	degraded       metrics.Counter
	tuneAttempts   metrics.Counter
	tunePromotions metrics.Counter
	tuneRejections metrics.Counter
	tuneRollbacks  metrics.Counter
	parseHist      *metrics.Histogram
	planHist       *metrics.Histogram
	executeHist    *metrics.Histogram
}

// feedbackCap resolves the configured feedback-queue bound: 0 selects the
// default, negative disables the cap entirely.
func feedbackCap(n int) int {
	switch {
	case n == 0:
		return defaultFeedbackCap
	case n < 0:
		return 0
	default:
		return n
	}
}

// New builds a master engine, spins up its own execution simulator, and
// calibrates the master's cost model with a sub-op probe run (Teradata's
// own costing "is based on the sub-op costing approach", Section 4).
func New(cfg Config) (*Engine, error) {
	if cfg.Master.Name == "" {
		cfg.Master = cluster.Config{
			Name: querygrid.Master, Nodes: 2, DataNodes: 2, CoresPerNode: 8,
			MemoryPerNode: 64 << 30, DFSBlockBytes: 64 << 20, Replication: 1, MemoryFraction: 0.5,
		}
	}
	if cfg.Link.BandwidthBytesPerSec == 0 {
		cfg.Link = querygrid.DefaultLink()
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	master, err := remote.NewRDBMS(querygrid.Master, cfg.Master, remote.Options{Seed: cfg.Seed, NoiseAmp: 0.02})
	if err != nil {
		return nil, fmt.Errorf("engine: build master simulator: %w", err)
	}
	grid, err := querygrid.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cat:          catalog.New(),
		grid:         grid,
		master:       master,
		remotes:      registry.New[remote.System](),
		estimators:   registry.New[core.Estimator](),
		materialized: registry.New[*rowengine.Table](),
		fb:           newFeedbackBatcher(feedbackCap(cfg.FeedbackCap)),
		versions:     modelver.NewStore(cfg.ModelHistory),
		workers:      cfg.Workers,
		breakers:     resilience.NewGroup(cfg.Breaker),
		retry:        cfg.Retry,
		fallback:     !cfg.DisableFallback,
		accuracy:     registry.New[*metrics.Accuracy](),
		parseHist:    metrics.NewLatencyHistogram(),
		planHist:     metrics.NewLatencyHistogram(),
		executeHist:  metrics.NewLatencyHistogram(),
	}
	if cfg.TraceBuffer >= 0 {
		e.traces = trace.NewRing(cfg.TraceBuffer)
	}
	e.remotes.Set(querygrid.Master, master)
	ms, _, err := subop.Train(master, subop.TrainConfig{})
	if err != nil {
		return nil, fmt.Errorf("engine: calibrate master cost model: %w", err)
	}
	selfEst, err := subop.NewEstimator(ms, remote.EngineHive, subop.InHouseComparable)
	if err != nil {
		return nil, err
	}
	e.estimators.Set(querygrid.Master, selfEst)
	var cache *optimizer.PlanCache
	if cfg.PlanCacheSize >= 0 {
		cache = optimizer.NewPlanCache(cfg.PlanCacheSize)
		e.stmts = newStmtCache(2 * cfg.PlanCacheSize)
	}
	e.opt = &optimizer.Optimizer{
		Catalog: e.cat, Grid: e.grid, Estimators: e.estimators,
		Workers: cfg.Workers, Cache: cache,
	}
	return e, nil
}

// PlanCacheStats reports the plan cache's effectiveness counters (zero-value
// stats when caching is disabled).
func (e *Engine) PlanCacheStats() optimizer.CacheStats {
	if e.opt.Cache == nil {
		return optimizer.CacheStats{}
	}
	return e.opt.Cache.Stats()
}

// Stats is a point-in-time snapshot of serving health: query counts, the
// per-stage latency histograms (wall clock of the serving process, not
// simulated time), plan-cache effectiveness, and the feedback backlog.
type Stats struct {
	Queries         uint64                    `json:"queries"`
	QueryErrors     uint64                    `json:"query_errors"`
	Parse           metrics.HistogramSnapshot `json:"parse"`
	Plan            metrics.HistogramSnapshot `json:"plan"`
	Execute         metrics.HistogramSnapshot `json:"execute"`
	PlanCache       optimizer.CacheStats      `json:"plan_cache"`
	FeedbackBacklog int                       `json:"feedback_backlog"`
	// FeedbackDropped counts observations discarded because the bounded
	// feedback queue was full (drop-oldest under sustained overload).
	FeedbackDropped uint64          `json:"feedback_dropped"`
	Resilience      ResilienceStats `json:"resilience"`
	// Tuning summarizes the model-lifecycle loop: drift-triggered candidate
	// tunes and their outcomes.
	Tuning TuningStats `json:"tuning"`
	// Accuracy reports each estimator's rolling prediction accuracy, keyed
	// "system/operator" (e.g. "hive_marketing/join"): how well predicted
	// step costs track the observed execution times.
	Accuracy map[string]metrics.AccuracySnapshot `json:"accuracy,omitempty"`
	// Traces counts traced queries recorded into the trace ring.
	Traces uint64 `json:"traces"`
}

// TuningStats counts model-lifecycle events: candidate tune attempts and
// how each resolved (promotion after holdout improvement, rejection
// otherwise), plus operator-driven rollbacks.
type TuningStats struct {
	Attempts   uint64 `json:"attempts"`
	Promotions uint64 `json:"promotions"`
	Rejections uint64 `json:"rejections"`
	Rollbacks  uint64 `json:"rollbacks"`
}

// TuningStats snapshots the model-lifecycle counters.
func (e *Engine) TuningStats() TuningStats {
	return TuningStats{
		Attempts:   e.tuneAttempts.Value(),
		Promotions: e.tunePromotions.Value(),
		Rejections: e.tuneRejections.Value(),
		Rollbacks:  e.tuneRollbacks.Value(),
	}
}

// ResilienceStats summarizes the fault-tolerance layer: remote-call
// retries, degraded re-plans, and per-remote circuit-breaker state.
type ResilienceStats struct {
	// Retries counts remote plan-step calls repeated after a transient
	// failure.
	Retries uint64 `json:"retries"`
	// Fallbacks counts degraded re-plans (one per excluded system).
	Fallbacks uint64 `json:"fallbacks"`
	// DegradedQueries counts queries answered by a fallback plan.
	DegradedQueries uint64 `json:"degraded_queries"`
	// Breakers snapshots every per-remote circuit breaker by system name.
	Breakers map[string]resilience.BreakerSnapshot `json:"breakers"`
}

// Stats snapshots the engine's serving metrics.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:         e.queries.Value(),
		QueryErrors:     e.queryErrors.Value(),
		Parse:           e.parseHist.Snapshot(),
		Plan:            e.planHist.Snapshot(),
		Execute:         e.executeHist.Snapshot(),
		PlanCache:       e.PlanCacheStats(),
		FeedbackBacklog: e.FeedbackBacklog(),
		FeedbackDropped: e.FeedbackDropped(),
		Resilience:      e.ResilienceStats(),
		Tuning:          e.TuningStats(),
		Accuracy:        e.AccuracyStats(),
		Traces:          e.traces.Count(),
	}
}

// AccuracyStats snapshots every per-(system, operator) estimator-accuracy
// window, keyed "system/operator".
func (e *Engine) AccuracyStats() map[string]metrics.AccuracySnapshot {
	snap := e.accuracy.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	out := make(map[string]metrics.AccuracySnapshot, len(snap))
	for name, a := range snap {
		out[name] = a.Snapshot()
	}
	return out
}

// accuracyFor returns the rolling accuracy window for one (system, operator)
// pair, creating it on first use. Concurrent creators race benignly: exactly
// one window wins the SetIfAbsent and everyone converges on it.
func (e *Engine) accuracyFor(system, kind string) *metrics.Accuracy {
	key := system + "/" + kind
	if a, ok := e.accuracy.Get(key); ok {
		return a
	}
	a := metrics.NewAccuracy(0)
	if !e.accuracy.SetIfAbsent(key, a) {
		a, _ = e.accuracy.Get(key)
	}
	return a
}

// ResetAccuracy empties every accuracy window belonging to a system. The
// engine calls it whenever the system's model changes — candidate
// promotion, rollback, or an in-place TuneSystem pass — because the
// retained (predicted, actual) pairs scored the old model; leaving them in
// the window would keep the Drifting flag latched (and immediately re-fire
// the tuner) long after the model change fixed the calibration. The windows
// reset in place, so hot-path pointers into them stay valid.
func (e *Engine) ResetAccuracy(system string) {
	prefix := system + "/"
	for key, a := range e.accuracy.Snapshot() {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			a.Reset()
		}
	}
}

// ErrUnknownSystem tags failures caused by a request or plan naming a
// system that is not registered, so the serving layer can classify them
// (errors.Is) without string matching.
var ErrUnknownSystem = errors.New("unknown system")

// unknownSystemError keeps the exact historical message text while
// supporting errors.Is(err, ErrUnknownSystem).
type unknownSystemError struct{ msg string }

func (e *unknownSystemError) Error() string        { return e.msg }
func (e *unknownSystemError) Is(target error) bool { return target == ErrUnknownSystem }

// stepKey identifies one (system, operator kind) pair without the string
// concatenation a combined key would cost on every lookup.
type stepKey struct{ system, kind string }

// stepState is the per-(system, kind) state executeStep touches on every
// step: the retry salt (also the accuracy registry key), the accuracy
// window, and the per-system lookups — remote handle, estimator, breaker.
// The first two are immutable once created; sys and est come from mutable
// registries, so the entry records the registry generations it observed and
// is rebuilt when either registry changes.
type stepState struct {
	salt string
	acc  *metrics.Accuracy
	br   *resilience.Breaker
	sys  remote.System
	est  core.Estimator
	rgen uint64 // remotes generation at capture
	egen uint64 // estimators generation at capture
}

// stepStateFor returns the cached hot-path state for one (system, kind)
// pair, creating and installing it on first execution and rebuilding it
// when the remote or estimator registry has changed. The fast path is two
// atomic generation loads plus a struct-keyed map lookup — no allocation,
// no string concatenation. An unknown system returns an error before any
// side effect (no accuracy window or breaker is created for it).
func (e *Engine) stepStateFor(system, kind string) (*stepState, error) {
	k := stepKey{system, kind}
	rgen, egen := e.remotes.Generation(), e.estimators.Generation()
	if m := e.stepStates.Load(); m != nil {
		if st, ok := (*m)[k]; ok && st.rgen == rgen && st.egen == egen {
			return st, nil
		}
	}
	sys, ok := e.remotes.Get(system)
	if !ok {
		return nil, &unknownSystemError{msg: fmt.Sprintf("engine: plan step targets unknown system %q", system)}
	}
	est, _ := e.estimators.Get(system)
	st := &stepState{
		salt: system + "/" + kind,
		acc:  e.accuracyFor(system, kind),
		br:   e.breakers.For(system),
		sys:  sys,
		est:  est,
		rgen: rgen,
		egen: egen,
	}
	e.stepMu.Lock()
	defer e.stepMu.Unlock()
	next := make(map[stepKey]*stepState, 8)
	if old := e.stepStates.Load(); old != nil {
		for ok, ov := range *old {
			next[ok] = ov
		}
	}
	next[k] = st
	e.stepStates.Store(&next)
	return st, nil
}

// ResilienceStats snapshots retry/fallback counters and breaker states.
func (e *Engine) ResilienceStats() ResilienceStats {
	return ResilienceStats{
		Retries:         e.retries.Value(),
		Fallbacks:       e.fallbacks.Value(),
		DegradedQueries: e.degraded.Value(),
		Breakers:        e.breakers.Snapshot(),
	}
}

// Health is the engine's liveness verdict for /health: ok while every
// circuit breaker is closed, degraded otherwise.
type Health struct {
	Status     string          `json:"status"` // "ok" or "degraded"
	OpenCount  int             `json:"open_breakers"`
	Resilience ResilienceStats `json:"resilience"`
}

// Health reports whether the federation is fully available.
func (e *Engine) Health() Health {
	h := Health{Status: "ok", OpenCount: e.breakers.OpenCount(), Resilience: e.ResilienceStats()}
	if h.OpenCount > 0 {
		h.Status = "degraded"
	}
	return h
}

// Breaker exposes the circuit breaker guarding a system, creating it closed
// on first use (tests and operational tooling flip or inspect it directly).
func (e *Engine) Breaker(system string) *resilience.Breaker {
	return e.breakers.For(system)
}

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Grid exposes the QueryGrid model.
func (e *Engine) Grid() *querygrid.Grid { return e.grid }

// Remote returns a registered remote system. The lookup is lock-free.
func (e *Engine) Remote(name string) (remote.System, error) {
	sys, ok := e.remotes.Get(name)
	if !ok {
		return nil, &unknownSystemError{msg: fmt.Sprintf("engine: unknown remote system %q", name)}
	}
	return sys, nil
}

// Estimator returns the cost estimator registered for a system. The lookup
// is lock-free.
func (e *Engine) Estimator(name string) (core.Estimator, error) {
	est, ok := e.estimators.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: no estimator for system %q", name)
	}
	return est, nil
}

// Systems lists registered system names (master included), sorted.
func (e *Engine) Systems() []string { return e.remotes.Names() }

// RegisterRemote adds a remote system with an already built estimator
// (typically a hybrid.Estimator wrapping its costing profile).
func (e *Engine) RegisterRemote(sys remote.System, est core.Estimator) error {
	if sys == nil || est == nil {
		return fmt.Errorf("engine: remote system and estimator are required")
	}
	name := sys.Name()
	if name == querygrid.Master {
		return fmt.Errorf("engine: %q is reserved for the master", name)
	}
	if !e.remotes.SetIfAbsent(name, sys) {
		return fmt.Errorf("engine: remote %q already registered", name)
	}
	e.estimators.Set(name, est)
	return nil
}

// RegisterRemoteSubOp registers an openbox remote, running the sub-op probe
// training and wrapping the learned models in a costing profile.
func (e *Engine) RegisterRemoteSubOp(sys remote.System, kind remote.EngineKind, policy subop.ChoicePolicy) (*hybrid.Estimator, *subop.Report, error) {
	ms, rep, err := subop.Train(sys, subop.TrainConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("engine: sub-op training for %q: %w", sys.Name(), err)
	}
	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.SubOp,
		Policy: policy, SubOpModels: ms,
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// LogicalTrainOptions controls blackbox training.
type LogicalTrainOptions struct {
	// JoinPairs caps the join training pairs (default 250; the paper used
	// 1000, which works too but takes proportionally longer).
	JoinPairs int
	// TrainScan additionally trains a scan (filter/project) model — the
	// paper trains join and aggregation; scans are a cheap extension of the
	// same methodology.
	TrainScan bool
	// Config overrides the per-model logical-op configuration; zero value
	// uses DefaultConfig for each operator's dimensionality.
	Join, Agg, Scan logicalop.Config
	// Seed drives workload sampling and network initialization.
	Seed int64
}

// LogicalTrainReport summarizes a blackbox training run.
type LogicalTrainReport struct {
	JoinQueries, AggQueries, ScanQueries    int
	JoinTrainSec, AggTrainSec, ScanTrainSec float64 // simulated remote time spent
	JoinResult, AggResult, ScanResult       *nn.TrainResult
}

// scopeWorkers defaults a training config's worker bound to the engine's own
// setting, so Config.Workers governs training fan-out without touching the
// process-wide pool. An explicit per-config Workers wins.
func (e *Engine) scopeWorkers(cfg *logicalop.Config) {
	if cfg.NN.Train.Workers == 0 {
		cfg.NN.Train.Workers = e.workers
	}
}

// RegisterRemoteLogicalOp registers a blackbox remote: it generates the
// Figure 10 training workloads over the system's registered tables,
// executes them on the remote (expensive — this is the paper's point),
// trains the per-operator neural models, and wraps them in a profile.
func (e *Engine) RegisterRemoteLogicalOp(sys remote.System, kind remote.EngineKind, opts LogicalTrainOptions) (*hybrid.Estimator, *LogicalTrainReport, error) {
	tables := e.cat.BySystem(sys.Name())
	if len(tables) < 2 {
		return nil, nil, fmt.Errorf("engine: logical-op training needs at least 2 tables registered for %q, have %d", sys.Name(), len(tables))
	}
	if opts.JoinPairs <= 0 {
		opts.JoinPairs = 250
	}
	rep := &LogicalTrainReport{}

	aggQs, err := workload.AggTrainingSet(tables)
	if err != nil {
		return nil, nil, err
	}
	aggRun, err := workload.RunAggSetN(e.workers, sys, aggQs)
	if err != nil {
		return nil, nil, err
	}
	rep.AggQueries = len(aggQs)
	rep.AggTrainSec = aggRun.TotalSec
	aggCfg := opts.Agg
	if aggCfg.NN.Network.InputDim == 0 {
		aggCfg = logicalop.DefaultConfig(4, opts.Seed+1)
	}
	e.scopeWorkers(&aggCfg)
	aggModel, aggRes, err := logicalop.Train("aggregation", plan.AggDimNames(), aggRun.X, aggRun.Y, aggCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.AggResult = aggRes

	joinQs, err := workload.JoinTrainingSet(tables, opts.JoinPairs, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	joinRun, err := workload.RunJoinSetN(e.workers, sys, joinQs)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinQueries = len(joinQs)
	rep.JoinTrainSec = joinRun.TotalSec
	joinCfg := opts.Join
	if joinCfg.NN.Network.InputDim == 0 {
		joinCfg = logicalop.DefaultConfig(7, opts.Seed+2)
	}
	e.scopeWorkers(&joinCfg)
	joinModel, joinRes, err := logicalop.Train("join", plan.JoinDimNames(), joinRun.X, joinRun.Y, joinCfg)
	if err != nil {
		return nil, nil, err
	}
	rep.JoinResult = joinRes

	prof := &hybrid.Profile{
		SystemName: sys.Name(), Engine: kind, Active: core.LogicalOp,
		LogicalJoin: joinModel, LogicalAgg: aggModel,
	}

	if opts.TrainScan {
		scanQs, err := workload.ScanTrainingSet(tables)
		if err != nil {
			return nil, nil, err
		}
		scanRun, err := workload.RunScanSetN(e.workers, sys, scanQs)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanQueries = len(scanQs)
		rep.ScanTrainSec = scanRun.TotalSec
		scanCfg := opts.Scan
		if scanCfg.NN.Network.InputDim == 0 {
			scanCfg = logicalop.DefaultConfig(4, opts.Seed+3)
		}
		e.scopeWorkers(&scanCfg)
		scanModel, scanRes, err := logicalop.Train("scan", logicalop.ScanDimNames(), scanRun.X, scanRun.Y, scanCfg)
		if err != nil {
			return nil, nil, err
		}
		rep.ScanResult = scanRes
		prof.LogicalScan = scanModel
	}
	est, err := hybrid.NewEstimator(prof)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterRemote(sys, est); err != nil {
		return nil, nil, err
	}
	return est, rep, nil
}

// RegisterTable adds a table (local or foreign) to the catalog. Foreign
// tables must name a registered remote system, as must every replica link.
// With durability attached the registration is WAL-logged before returning.
func (e *Engine) RegisterTable(t *catalog.Table) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if err := e.applyRegisterTable(t); err != nil {
		return err
	}
	return e.logMutation(opRegisterTable, t)
}

// SetLink overrides the QueryGrid link characteristics for one remote
// system, WAL-logged when durability is attached.
func (e *Engine) SetLink(system string, cfg querygrid.LinkConfig) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if err := e.grid.SetLink(system, cfg); err != nil {
		return err
	}
	return e.logMutation(opSetLink, linkPayload{System: system, Link: cfg})
}

// Materialize generates actual rows for a registered table so queries over
// it return results, not just costs. Limited to small tables. WAL-logged
// when durability is attached.
func (e *Engine) Materialize(name string) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if err := e.applyMaterialize(name); err != nil {
		return err
	}
	return e.logMutation(opMaterialize, materializePayload{Table: name})
}

// QueryResult is one executed federated query.
type QueryResult struct {
	Plan *optimizer.Plan
	// ActualSec is the total simulated execution time (operators plus
	// transfers).
	ActualSec float64
	// StepActuals aligns with Plan.Steps.
	StepActuals []float64
	// CacheHit reports the plan was served from the plan cache.
	CacheHit bool
	// Retries counts remote step attempts beyond the first across the
	// plan that produced this result (the final plan, for degraded
	// queries that re-planned).
	Retries int
	// Rows holds real results when every referenced table is materialized;
	// nil otherwise (statistics-only execution).
	Rows *rowengine.Result
	// Degraded reports the answer came from a fallback plan after one or
	// more remotes failed or were open-circuited mid-query.
	Degraded bool
	// Excluded lists the systems the fallback plan(s) avoided, sorted;
	// empty for a healthy execution.
	Excluded []string
	// Trace is the query's span tree when it ran through QueryTraced; nil
	// for untraced queries.
	Trace *trace.Trace
}

// Explain plans a query and renders the plan without executing it. Repeated
// identical statements hit the plan cache and render byte-identical output.
func (e *Engine) Explain(sql string) (string, error) {
	ctx := context.Background()
	stmt, err := e.parse(ctx, sql)
	if err != nil {
		return "", err
	}
	p, _, err := e.plan(ctx, stmt)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// parse times statement parsing into the parse-stage histogram. Parsed
// statements are immutable downstream, so repeats of the same text are
// served from the statement LRU.
func (e *Engine) parse(ctx context.Context, sql string) (*sqlparse.SelectStmt, error) {
	// LRU hits skip the parse histogram: nothing was parsed, and the two
	// clock reads per observation are measurable at serving QPS.
	if e.stmts != nil {
		if stmt, ok := e.stmts.get(sql); ok {
			if _, sp := trace.Start(ctx, "parse"); sp != nil {
				sp.SetAttr("cache", "hit")
				sp.End()
			}
			return stmt, nil
		}
	}
	_, sp := trace.Start(ctx, "parse")
	start := time.Now()
	defer func() { e.parseHist.ObserveExemplar(time.Since(start), sp.TraceID()) }()
	stmt, err := sqlparse.Parse(sql)
	if err == nil && e.stmts != nil {
		e.stmts.put(sql, stmt)
	}
	sp.EndErr(err)
	return stmt, err
}

// plan times planning (cache hits included) into the plan-stage histogram
// and reports whether the plan came from the plan cache.
func (e *Engine) plan(ctx context.Context, stmt *sqlparse.SelectStmt) (*optimizer.Plan, bool, error) {
	ctx, sp := trace.Start(ctx, "plan")
	start := time.Now()
	p, hit, err := e.opt.PlanCtxHit(ctx, stmt)
	e.planHist.ObserveExemplar(time.Since(start), sp.TraceID())
	if sp != nil && err == nil {
		sp.SetInt("steps", len(p.Steps))
		sp.SetFloat("estimated_sec", p.EstimatedSec)
	}
	sp.EndErr(err)
	return p, hit, err
}

// Query plans and executes a SQL statement across the federation. It is safe
// for concurrent use: plans come from the (lock-free-read) optimizer, step
// execution only reads registry snapshots, and estimator feedback is queued
// to the batcher rather than applied inline.
func (e *Engine) Query(sql string) (*QueryResult, error) {
	return e.QueryContext(context.Background(), sql)
}

// QueryContext is Query with deadline/cancellation plumbing: the context is
// checked before every plan step and between retry attempts, so a serving
// timeout cancels in-flight remote work instead of letting it run to
// completion behind an abandoned request.
func (e *Engine) QueryContext(ctx context.Context, sql string) (*QueryResult, error) {
	rec := e.events.Load()
	if rec == nil {
		e.queries.Inc()
		res, err := e.query(ctx, sql)
		if err != nil {
			e.queryErrors.Inc()
		}
		return res, err
	}
	start := time.Now()
	e.queries.Inc()
	res, err := e.query(ctx, sql)
	if err != nil {
		e.queryErrors.Inc()
	}
	e.emitEvent(rec, "query", sql, res, err, time.Since(start), 0)
	return res, err
}

// QueryTraced is QueryContext with span-tree tracing enabled: the whole
// pipeline (parse → plan with per-candidate costing spans → execute with
// per-step and per-attempt spans) records into a trace that is attached to
// the result and published to the engine's trace ring — the serving stack's
// EXPLAIN ANALYZE. Failed queries are traced too (the trace lands in the
// ring with the error recorded), so slow failures stay diagnosable.
func (e *Engine) QueryTraced(ctx context.Context, sql string) (*QueryResult, *trace.Trace, error) {
	// The trace ID is claimed before the query runs (NewTrace), so the
	// histogram exemplars and the wide event emitted along the way carry
	// the ID the trace is retrievable under once published.
	tr := e.traces.NewTrace(sql)
	ctx = trace.ContextWithSpan(ctx, tr.Root)
	rec := e.events.Load()
	var start time.Time
	if rec != nil {
		start = time.Now()
	}
	e.queries.Inc()
	res, err := e.query(ctx, sql)
	if err != nil {
		e.queryErrors.Inc()
	}
	tr.Finish(err)
	e.traces.Record(tr)
	if res != nil {
		res.Trace = tr
	}
	if rec != nil {
		e.emitEvent(rec, "query", sql, res, err, time.Since(start), tr.ID)
	}
	return res, tr, err
}

// RecentTraces returns up to n of the most recently recorded traces, newest
// first (nil when the trace buffer is disabled).
func (e *Engine) RecentTraces(n int) []*trace.Trace { return e.traces.Recent(n) }

// stepFailure wraps a plan-step execution error with the system it failed
// on, so the fallback loop knows which remote to plan around.
type stepFailure struct {
	system string
	kind   string
	err    error
}

func (f *stepFailure) Error() string {
	return fmt.Sprintf("engine: execute %s on %q: %v", f.kind, f.system, f.err)
}

func (f *stepFailure) Unwrap() error { return f.err }

// fallbackEligible reports whether a query error warrants degraded
// re-planning: an infrastructural failure (transient exhausted, outage,
// open breaker) on a non-master system. Semantic errors propagate — they
// would fail identically on every replica.
func fallbackEligible(err error) (string, bool) {
	var sf *stepFailure
	if !errors.As(err, &sf) || sf.system == querygrid.Master {
		return "", false
	}
	return sf.system, resilience.Infrastructural(sf.err)
}

func (e *Engine) query(ctx context.Context, sql string) (*QueryResult, error) {
	stmt, err := e.parse(ctx, sql)
	if err != nil {
		return nil, err
	}
	p, hit, err := e.plan(ctx, stmt)
	if err != nil {
		return nil, err
	}
	res, err := e.run(ctx, stmt, p)
	if res != nil {
		res.CacheHit = hit
	}
	return res, err
}

// run executes an already built plan for a statement — the shared back half
// of the scalar and batched query paths: execute-stage timing, and on an
// infrastructural failure the degraded re-planning loop.
func (e *Engine) run(ctx context.Context, stmt *sqlparse.SelectStmt, p *optimizer.Plan) (*QueryResult, error) {
	execStart := time.Now()
	defer func() {
		e.executeHist.ObserveExemplar(time.Since(execStart), trace.SpanFromContext(ctx).TraceID())
	}()
	return e.runInto(ctx, stmt, p, &QueryResult{}, make([]float64, 0, len(p.Steps)))
}

// runInto is run with caller-provided result storage and without the
// execute-stage timing: the batch path slab-allocates results for the whole
// batch and chains a single clock read per statement boundary.
func (e *Engine) runInto(ctx context.Context, stmt *sqlparse.SelectStmt, p *optimizer.Plan, res *QueryResult, actuals []float64) (*QueryResult, error) {
	res, err := e.executeInto(ctx, stmt, p, res, actuals)
	if err == nil || !e.fallback {
		return res, err
	}
	// Degraded re-planning: exclude each failed system in turn and retry
	// with a fallback plan, as long as failures keep naming new systems.
	// The exclusion set only grows, so the loop is bounded by the number
	// of registered remotes.
	excluded := map[string]bool{}
	for {
		system, ok := fallbackEligible(err)
		if !ok || excluded[system] {
			return nil, err
		}
		excluded[system] = true
		e.fallbacks.Inc()
		planStart := time.Now()
		rctx, rsp := trace.Start(ctx, "replan")
		rsp.SetAttr("excluded", system)
		p2, perr := e.opt.PlanExcludingCtx(rctx, stmt, excluded)
		rsp.EndErr(perr)
		e.planHist.Observe(time.Since(planStart))
		if perr != nil {
			return nil, fmt.Errorf("engine: no fallback plan after %w (re-plan: %v)", err, perr)
		}
		res, err = e.execute(ctx, stmt, p2)
		if err == nil {
			res.Degraded = true
			res.Excluded = make([]string, 0, len(excluded))
			for s := range excluded {
				res.Excluded = append(res.Excluded, s)
			}
			sort.Strings(res.Excluded)
			e.degraded.Inc()
			return res, nil
		}
	}
}

// execute runs every step of one plan, then computes row-level answers when
// every referenced table is materialized.
func (e *Engine) execute(ctx context.Context, stmt *sqlparse.SelectStmt, p *optimizer.Plan) (*QueryResult, error) {
	return e.executeInto(ctx, stmt, p, &QueryResult{}, make([]float64, 0, len(p.Steps)))
}

// executeInto is execute with caller-provided storage: res is overwritten
// and actuals (sliced to zero length) becomes the StepActuals backing. The
// batch path hands out slices of one per-batch slab here, cutting the two
// heap objects per statement the scalar path pays.
func (e *Engine) executeInto(ctx context.Context, stmt *sqlparse.SelectStmt, p *optimizer.Plan, res *QueryResult, actuals []float64) (_ *QueryResult, err error) {
	ctx, sp := trace.Start(ctx, "execute")
	defer func() { sp.EndErr(err) }()
	*res = QueryResult{Plan: p, StepActuals: actuals[:0]}
	for i := range p.Steps {
		if err = ctx.Err(); err != nil {
			return nil, err
		}
		var actual float64
		if actual, err = e.executeStep(ctx, &p.Steps[i], res); err != nil {
			return nil, err
		}
		res.StepActuals = append(res.StepActuals, actual)
		res.ActualSec += actual
	}
	if sp != nil {
		sp.SetFloat("simulated_sec", res.ActualSec)
	}
	// Row-level answers when every referenced table is materialized.
	if rows, ok := e.materializedFor(stmt); ok {
		out, rerr := rowengine.Execute(stmt, rows)
		if rerr != nil {
			err = fmt.Errorf("engine: row execution: %w", rerr)
			return nil, err
		}
		res.Rows = out
	}
	return res, nil
}

// executeStep runs one plan step on the simulators — behind the target
// system's circuit breaker and the retry policy — queues the actual cost
// for delivery to the estimator (the logging phase of Figure 3), and feeds
// the (predicted, observed) pair into the per-(system, operator) accuracy
// window.
func (e *Engine) executeStep(ctx context.Context, step *optimizer.Step, res *QueryResult) (actual float64, err error) {
	ctx, sp := trace.Start(ctx, step.Kind)
	if sp != nil {
		sp.SetSystem(step.System)
		sp.SetFloat("estimated_sec", step.EstimatedSec)
	}
	defer func() { sp.EndErr(err) }()
	if step.Kind == "transfer" {
		// Network behaviour is learned elsewhere (Section 2's scope); the
		// grid estimate doubles as the simulated actual. The endpoints
		// still matter: a transfer cannot move data out of (or into) a
		// downed or open-circuited system.
		sp.SetAttr("from", step.From)
		for _, end := range []string{step.From, step.System} {
			if cerr := e.checkEndpoint(end); cerr != nil {
				err = &stepFailure{system: end, kind: step.Kind, err: cerr}
				return 0, err
			}
		}
		return step.EstimatedSec, nil
	}
	// The unknown-system check must precede any estimator work: a plan
	// step targeting an unregistered system is a planning bug, not a
	// costing concern. stepStateFor preserves that ordering — it resolves
	// the system handle before creating any per-pair state.
	st, serr := e.stepStateFor(step.System, step.Kind)
	if serr != nil {
		err = serr
		return 0, err
	}
	est, br := st.est, st.br
	sys := st.sys
	var ex remote.Execution
	attempts, rerr := resilience.Retry(ctx, e.retry, st.salt, func(actx context.Context) error {
		_, asp := trace.Start(actx, "attempt")
		if aerr := br.Allow(); aerr != nil {
			asp.EndErr(aerr)
			return aerr
		}
		var aerr error
		ex, aerr = e.dispatchStep(sys, step)
		br.Record(aerr)
		asp.EndErr(aerr)
		return aerr
	})
	if attempts > 1 {
		e.retries.Add(uint64(attempts - 1))
		sp.SetInt("retries", attempts-1)
		res.Retries += attempts - 1
	}
	if rerr != nil {
		err = &stepFailure{system: step.System, kind: step.Kind, err: rerr}
		return 0, err
	}
	// The estimate-vs-observed loop: every executed operator scores its
	// estimator's prediction (transfers are excluded above — the grid
	// estimate doubles as the actual, so the comparison is vacuous).
	st.acc.Observe(step.EstimatedSec, ex.ElapsedSec)
	sp.SetFloat("actual_sec", ex.ElapsedSec)
	if fb, ok := est.(core.Feedback); ok {
		it := feedbackItem{est: fb, kind: step.Kind, actualSec: ex.ElapsedSec}
		switch step.Kind {
		case "join":
			it.join = *step.Join
		case "aggregation":
			it.agg = *step.Agg
		case "scan":
			it.scan = *step.Scan
		}
		e.fb.enqueue(it)
	}
	return ex.ElapsedSec, nil
}

// checkEndpoint verifies one transfer endpoint is usable: its breaker must
// admit the call and, when the registered system reports its own
// availability (the fault injector does), it must be up. The check goes
// through the breaker so outages observed on transfers open the circuit
// like operator failures do.
func (e *Engine) checkEndpoint(system string) error {
	if system == "" || system == querygrid.Master {
		return nil
	}
	sys, ok := e.remotes.Get(system)
	if !ok {
		return nil // unknown endpoints are caught by operator steps
	}
	av, ok := sys.(interface{ Available(op string) error })
	if !ok {
		return nil // plain simulators are always reachable
	}
	br := e.breakers.For(system)
	if err := br.Allow(); err != nil {
		return err
	}
	err := av.Available("transfer")
	br.Record(err)
	return err
}

// dispatchStep issues one operator execution against a system.
func (e *Engine) dispatchStep(sys remote.System, step *optimizer.Step) (remote.Execution, error) {
	switch step.Kind {
	case "join":
		return sys.ExecuteJoin(*step.Join)
	case "aggregation":
		return sys.ExecuteAgg(*step.Agg)
	case "scan":
		return sys.ExecuteScan(*step.Scan)
	case "sort":
		// The final ORDER BY runs where the result landed; a sort probe
		// (read + sort of the result shape) is exactly that work.
		rows, size := step.Rows, step.RowSize
		if rows < 1 {
			rows = 1
		}
		if size < 1 {
			size = 1
		}
		return sys.ExecuteProbe(remote.Probe{Target: remote.Sort, Records: rows, RecordSize: size})
	default:
		return remote.Execution{}, fmt.Errorf("engine: unknown step kind %q", step.Kind)
	}
}

// materializedFor collects the materialized tables a statement references;
// ok is false if any is missing.
func (e *Engine) materializedFor(stmt *sqlparse.SelectStmt) (map[string]*rowengine.Table, bool) {
	// Probe the FROM table before allocating anything: most statements in a
	// high-QPS stream reference at least one non-materialized table, and the
	// serving path calls this on every query.
	from, ok := e.materialized.Get(stmt.From.Name)
	if !ok {
		return nil, false
	}
	out := make(map[string]*rowengine.Table, 1+len(stmt.Joins))
	out[stmt.From.Name] = from
	for i := range stmt.Joins {
		n := stmt.Joins[i].Table.Name
		t, ok := e.materialized.Get(n)
		if !ok {
			return nil, false
		}
		out[n] = t
	}
	return out, true
}
