package engine

import (
	"sync"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/nn"
	"intellisphere/internal/remote"
)

// registerLogicalHive trains a blackbox hive remote over a small table set so
// concurrent tests exercise the logical-op feedback and remedy paths without
// long training runs.
func registerLogicalHive(t *testing.T, e *Engine) *hybrid.Estimator {
	t.Helper()
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {40000, 250}, {80000000, 500}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	cfg := logicalop.DefaultConfig(4, 1)
	cfg.NN.Train = nn.TrainConfig{Iterations: 100, Optimizer: nn.Adam, BatchSize: 32, Seed: 1}
	jcfg := logicalop.DefaultConfig(7, 2)
	jcfg.NN.Train = cfg.NN.Train
	est, _, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{
		JoinPairs: 4, TrainScan: true, Agg: cfg, Join: jcfg, Scan: cfg, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestConcurrentQueriesLogicalOpFeedback hammers Query from many goroutines
// against a logical-op remote, driving concurrent model estimates (including
// the out-of-range online-remedy path) and the async feedback pipeline. Run
// under -race this is the serving-path safety check for the whole stack:
// lock-free registry lookups, shared cached plans, batched Observe* delivery.
func TestConcurrentQueriesLogicalOpFeedback(t *testing.T) {
	e := newEngine(t)
	est := registerLogicalHive(t, e)
	// An out-of-range table (row size beyond the trained grid) forces the
	// remedy estimate during planning.
	big, err := datagen.Table(160000000, 1000, "hivebb")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(big); err != nil {
		t.Fatal(err)
	}
	prof := est.Profile()
	before := prof.LogicalAgg.PendingLog()
	queries := []string{
		// In-range aggregation: executes on hivebb, logs feedback.
		"SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10",
		// Out-of-range aggregation: the estimate goes through the remedy.
		"SELECT a10, SUM(a1) FROM t160000000_1000 GROUP BY a10",
		// Join across the trained tables.
		"SELECT r.a1 FROM t80000000_500 r JOIN t100000_100 s ON r.a1 = s.a1",
		// Filtered scan.
		"SELECT a1 FROM t40000_250 WHERE a1 < 1000",
	}
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(queries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, sql := range queries {
					if _, err := e.Query(sql); err != nil {
						errs <- err
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query failed: %v", err)
	}
	e.FlushFeedback()
	if got := e.FeedbackBacklog(); got != 0 {
		t.Errorf("feedback backlog after flush = %d", got)
	}
	if prof.LogicalAgg.PendingLog() <= before {
		t.Error("no feedback reached the logical aggregation model")
	}
	st := e.Stats()
	want := uint64(goroutines * rounds * len(queries))
	if st.Queries != want {
		t.Errorf("Stats.Queries = %d, want %d", st.Queries, want)
	}
	if st.QueryErrors != 0 {
		t.Errorf("Stats.QueryErrors = %d", st.QueryErrors)
	}
	if st.PlanCache.Hits == 0 {
		t.Error("no plan-cache hits across identical concurrent statements")
	}
	if st.Plan.Count == 0 || st.Execute.Count == 0 {
		t.Errorf("stage histograms empty: plan=%d execute=%d", st.Plan.Count, st.Execute.Count)
	}
}

// TestPlanCacheInvalidationThroughEngine checks the generation plumbing end
// to end: repeated statements hit, and every profile/catalog mutation the
// issue names (RegisterTable, InstallLogicalModels, Switch) makes the next
// lookup a miss.
func TestPlanCacheInvalidationThroughEngine(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{1000000, 100}, ts{100000, 100})
	const sql = "SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1"

	out1, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Error("cached Explain output not byte-identical")
	}
	if s := e.PlanCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after two Explains: %+v", s)
	}

	// RegisterTable bumps the catalog generation.
	tb, err := datagen.Table(10000, 100, "hive")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain(sql); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Stale != 1 {
		t.Fatalf("after RegisterTable: %+v", s)
	}

	// InstallLogicalModels bumps the estimator generation (nil models leave
	// the routing untouched but still signal a profile change).
	est, err := e.Estimator("hive")
	if err != nil {
		t.Fatal(err)
	}
	h := est.(*hybrid.Estimator)
	if _, err := e.Explain(sql); err != nil { // warm the cache again
		t.Fatal(err)
	}
	h.InstallLogicalModels(nil, nil, nil)
	if _, err := e.Explain(sql); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Stale != 2 {
		t.Fatalf("after InstallLogicalModels: %+v", s)
	}

	// Switch bumps it too.
	if _, err := e.Explain(sql); err != nil {
		t.Fatal(err)
	}
	if err := h.Switch(core.SubOp); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain(sql); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Stale != 3 {
		t.Fatalf("after Switch: %+v", s)
	}
}

// TestPlanCacheDisabled verifies Config.PlanCacheSize < 0 turns caching off.
func TestPlanCacheDisabled(t *testing.T) {
	e, err := New(Config{Seed: 9, PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	registerHive(t, e)
	registerTables(t, e, "hive", ts{100000, 100})
	for i := 0; i < 2; i++ {
		if _, err := e.Explain("SELECT a1 FROM t100000_100"); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.PlanCacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", s)
	}
}

// BenchmarkExplain measures the plan-cache speedup on repeated identical
// statements: "cold" replans every time (cache disabled), "cached" hits the
// LRU. The issue's acceptance bar is a ≥10× gap.
func BenchmarkExplain(b *testing.B) {
	build := func(b *testing.B, cacheSize int) *Engine {
		b.Helper()
		e, err := New(Config{Seed: 9, PlanCacheSize: cacheSize})
		if err != nil {
			b.Fatal(err)
		}
		h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
			b.Fatal(err)
		}
		for _, spec := range []ts{{1000000, 100}, {100000, 100}, {10000000, 250}} {
			tb, err := datagen.Table(spec.rows, spec.size, "hive")
			if err != nil {
				b.Fatal(err)
			}
			if err := e.RegisterTable(tb); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	const sql = "SELECT r.a1 FROM t10000000_250 r JOIN t100000_100 s ON r.a1 = s.a1 JOIN t1000000_100 u ON s.a1 = u.a1 WHERE r.a1 < 500000 ORDER BY r.a1 LIMIT 10"
	b.Run("cold", func(b *testing.B) {
		e := build(b, -1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Explain(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := build(b, 0)
		if _, err := e.Explain(sql); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Explain(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}
