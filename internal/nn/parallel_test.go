package nn

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestTrainNegativeBatchSizeError(t *testing.T) {
	n, _ := New(Config{InputDim: 1, Hidden: []int{3}})
	_, err := n.Train([][]float64{{1}, {2}}, []float64{1, 2}, TrainConfig{Iterations: 1, BatchSize: -8})
	if err == nil {
		t.Fatal("expected error for negative BatchSize")
	}
}

// trainWeights trains a fresh network with the given worker count and
// returns the final RMSE plus the serialized weights.
func trainWeights(t *testing.T, workers int) (float64, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	x := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 0.4*x[i][0] + x[i][1]*x[i][2]
	}
	n, err := New(Config{InputDim: 3, Hidden: []int{6, 3}, Activation: Tanh, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Full batch (300 samples) spans several gradient chunks, so the
	// parallel reduction path is genuinely exercised.
	res, err := n.Train(x, y, TrainConfig{Iterations: 60, Optimizer: Adam, Seed: 4, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalRMSE, data
}

// Determinism regression: serial and parallel training must produce
// identical weights and RMSE — not approximately, bit-for-bit. The chunked
// ordered reduction in Train guarantees it for any worker count.
func TestTrainParallelMatchesSerialExactly(t *testing.T) {
	serialRMSE, serialWeights := trainWeights(t, 1)
	for _, w := range []int{2, 4, 7} {
		rmse, weights := trainWeights(t, w)
		if rmse != serialRMSE {
			t.Errorf("workers=%d: FinalRMSE %v != serial %v", w, rmse, serialRMSE)
		}
		if string(weights) != string(serialWeights) {
			t.Errorf("workers=%d: trained weights differ from serial run", w)
		}
	}
}

// Forward must be safe for concurrent callers (the optimizer costs
// placement candidates in parallel against shared estimators).
func TestForwardConcurrent(t *testing.T) {
	n, _ := New(Config{InputDim: 2, Hidden: []int{5, 3}, Activation: Tanh, Seed: 8})
	in := []float64{0.3, 0.7}
	want := n.Forward(in)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := n.Forward(in); got != want {
					t.Errorf("concurrent Forward = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
