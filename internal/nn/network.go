// Package nn implements the small feed-forward neural networks the paper's
// logical-operator costing approach trains per SQL operator (Section 3).
// The networks are deliberately modest — the paper fixes two hidden layers
// and sizes them by cross validation between the input dimensionality d and
// 2d — so everything here is plain stdlib Go: dense layers, tanh/ReLU/
// sigmoid activations, SGD-with-momentum and Adam trainers, min-max (and
// optionally log-space) normalization, and the cross-validation topology
// search described in the paper.
//
// Weights live in one contiguous row-major slab per layer, so the forward
// and backward passes are tight index loops with no per-sample allocations,
// and Forward is safe for concurrent use (scratch activations come from a
// pool). The layered [][]float64 view survives only in the JSON form, so
// serialized models stay byte-compatible with earlier versions.
package nn

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Tanh Activation = iota
	ReLU
	Sigmoid
	Identity
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Identity:
		return "identity"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivative computes the activation derivative given the activation OUTPUT
// value (cheaper than recomputing from the pre-activation).
func (a Activation) derivative(out float64) float64 {
	switch a {
	case Tanh:
		return 1 - out*out
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return out * (1 - out)
	default:
		return 1
	}
}

// Config describes a network: input width, hidden layer sizes, and the
// hidden-layer activation. The output layer is a single linear neuron, as
// the models regress one value (the elapsed execution time).
type Config struct {
	InputDim   int        `json:"input_dim"`
	Hidden     []int      `json:"hidden"`
	Activation Activation `json:"activation"`
	Seed       int64      `json:"seed"`
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.InputDim <= 0 {
		return fmt.Errorf("nn: input dimension %d must be positive", c.InputDim)
	}
	if len(c.Hidden) == 0 {
		return errors.New("nn: at least one hidden layer is required")
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// layer is one dense layer, out = act(W·in + b), with W stored as a single
// row-major slab: W[o][i] lives at w[o*in+i].
type layer struct {
	in, out int
	w       []float64 // [out*in], row-major
	b       []float64 // [out]
	act     Activation
}

func newLayer(in, out int, act Activation, rng *rand.Rand) layer {
	l := layer{
		in:  in,
		out: out,
		w:   make([]float64, out*in),
		b:   make([]float64, out),
		act: act,
	}
	// Xavier/Glorot uniform initialization keeps tiny tanh networks trainable.
	// Row-major fill preserves the draw order of the historical [][]float64
	// layout, so a given seed still produces the same network.
	limit := math.Sqrt(6 / float64(in+out))
	for i := range l.w {
		l.w[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

func (l *layer) forward(in []float64, out []float64) {
	for o := 0; o < l.out; o++ {
		s := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, v := range in {
			s += row[i] * v
		}
		out[o] = l.act.apply(s)
	}
}

// Network is a feed-forward regression network with one linear output.
type Network struct {
	cfg      Config
	layers   []layer
	maxWidth int
	// scratch pools forward-pass activation buffers so Forward allocates
	// nothing in steady state yet stays safe under concurrent callers.
	scratch sync.Pool
	// arenas pools batch-major inference scratch (see batch.go) so the
	// batched paths reuse whole planes across batches instead of taking a
	// pool hit per sample.
	arenas sync.Pool
}

// New constructs a network with randomly initialized weights drawn from the
// seeded generator in cfg.Seed, so construction is fully deterministic.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{cfg: cfg}
	prev := cfg.InputDim
	for _, h := range cfg.Hidden {
		n.layers = append(n.layers, newLayer(prev, h, cfg.Activation, rng))
		prev = h
	}
	n.layers = append(n.layers, newLayer(prev, 1, Identity, rng))
	n.initScratch()
	return n, nil
}

func (n *Network) initScratch() {
	n.maxWidth = 0
	for i := range n.layers {
		if w := n.layers[i].out; w > n.maxWidth {
			n.maxWidth = w
		}
	}
	width := n.maxWidth
	n.scratch.New = func() any {
		buf := make([]float64, 2*width)
		return &buf
	}
	n.arenas.New = func() any { return n.newArena() }
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// NumParams returns the total number of weights and biases.
func (n *Network) NumParams() int {
	total := 0
	for i := range n.layers {
		total += len(n.layers[i].w) + len(n.layers[i].b)
	}
	return total
}

// Forward runs inference on a single (already normalized) input vector and
// returns the raw network output. It is safe for concurrent use.
func (n *Network) Forward(x []float64) float64 {
	if len(x) != n.cfg.InputDim {
		panic(fmt.Sprintf("nn: Forward with %d inputs on a %d-input network", len(x), n.cfg.InputDim))
	}
	bufp := n.scratch.Get().(*[]float64)
	buf := *bufp
	in := x
	cur, next := buf[:n.maxWidth], buf[n.maxWidth:]
	for i := range n.layers {
		l := &n.layers[i]
		l.forward(in, cur[:l.out])
		in = cur[:l.out]
		cur, next = next, cur
	}
	res := in[0]
	n.scratch.Put(bufp)
	return res
}

// activations is a per-worker forward/backward scratch area: one flat slab
// holding every layer's activation and delta vectors.
type activations struct {
	acts   [][]float64
	deltas [][]float64
}

func newActivations(n *Network) *activations {
	a := &activations{
		acts:   make([][]float64, len(n.layers)),
		deltas: make([][]float64, len(n.layers)),
	}
	total := 0
	for i := range n.layers {
		total += n.layers[i].out
	}
	slab := make([]float64, 2*total)
	off := 0
	for i := range n.layers {
		w := n.layers[i].out
		a.acts[i] = slab[off : off+w : off+w]
		off += w
		a.deltas[i] = slab[off : off+w : off+w]
		off += w
	}
	return a
}

// forwardStore runs a forward pass writing the activations of every layer
// into dst and returns the output.
func (n *Network) forwardStore(x []float64, dst [][]float64) float64 {
	in := x
	for i := range n.layers {
		n.layers[i].forward(in, dst[i])
		in = dst[i]
	}
	return in[0]
}

// snapshot is the serializable form of a network.
type snapshot struct {
	Config Config      `json:"config"`
	Layers []layerSnap `json:"layers"`
}

type layerSnap struct {
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
	Act Activation  `json:"act"`
}

// MarshalJSON serializes the full network (topology + weights) so trained
// models can be stored inside a remote system's costing profile. The wire
// format keeps the historical nested-row layout.
func (n *Network) MarshalJSON() ([]byte, error) {
	s := snapshot{Config: n.cfg}
	for li := range n.layers {
		l := &n.layers[li]
		rows := make([][]float64, l.out)
		for o := 0; o < l.out; o++ {
			rows[o] = append([]float64(nil), l.w[o*l.in:(o+1)*l.in]...)
		}
		s.Layers = append(s.Layers, layerSnap{W: rows, B: append([]float64(nil), l.b...), Act: l.act})
	}
	return json.Marshal(s)
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("nn: decode network: %w", err)
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if len(s.Layers) != len(s.Config.Hidden)+1 {
		return fmt.Errorf("nn: snapshot has %d layers, config wants %d", len(s.Layers), len(s.Config.Hidden)+1)
	}
	n.cfg = s.Config
	n.layers = nil
	prev := s.Config.InputDim
	for li, ls := range s.Layers {
		out := len(ls.W)
		if out == 0 || len(ls.B) != out {
			return fmt.Errorf("nn: snapshot layer %d has %d weight rows and %d biases", li, out, len(ls.B))
		}
		l := layer{in: prev, out: out, w: make([]float64, out*prev), b: append([]float64(nil), ls.B...), act: ls.Act}
		for o, row := range ls.W {
			if len(row) != prev {
				return fmt.Errorf("nn: snapshot layer %d row %d has %d weights, want %d", li, o, len(row), prev)
			}
			copy(l.w[o*prev:(o+1)*prev], row)
		}
		n.layers = append(n.layers, l)
		prev = out
	}
	n.initScratch()
	return nil
}
