// Package nn implements the small feed-forward neural networks the paper's
// logical-operator costing approach trains per SQL operator (Section 3).
// The networks are deliberately modest — the paper fixes two hidden layers
// and sizes them by cross validation between the input dimensionality d and
// 2d — so everything here is plain stdlib Go: dense layers, tanh/ReLU/
// sigmoid activations, SGD-with-momentum and Adam trainers, min-max (and
// optionally log-space) normalization, and the cross-validation topology
// search described in the paper.
package nn

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Tanh Activation = iota
	ReLU
	Sigmoid
	Identity
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Identity:
		return "identity"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivative computes the activation derivative given the activation OUTPUT
// value (cheaper than recomputing from the pre-activation).
func (a Activation) derivative(out float64) float64 {
	switch a {
	case Tanh:
		return 1 - out*out
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return out * (1 - out)
	default:
		return 1
	}
}

// Config describes a network: input width, hidden layer sizes, and the
// hidden-layer activation. The output layer is a single linear neuron, as
// the models regress one value (the elapsed execution time).
type Config struct {
	InputDim   int        `json:"input_dim"`
	Hidden     []int      `json:"hidden"`
	Activation Activation `json:"activation"`
	Seed       int64      `json:"seed"`
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.InputDim <= 0 {
		return fmt.Errorf("nn: input dimension %d must be positive", c.InputDim)
	}
	if len(c.Hidden) == 0 {
		return errors.New("nn: at least one hidden layer is required")
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	W   [][]float64 // [outDim][inDim]
	B   []float64   // [outDim]
	Act Activation
}

func newLayer(in, out int, act Activation, rng *rand.Rand) *layer {
	l := &layer{
		W:   make([][]float64, out),
		B:   make([]float64, out),
		Act: act,
	}
	// Xavier/Glorot uniform initialization keeps tiny tanh networks trainable.
	limit := math.Sqrt(6 / float64(in+out))
	for o := range l.W {
		l.W[o] = make([]float64, in)
		for i := range l.W[o] {
			l.W[o][i] = (rng.Float64()*2 - 1) * limit
		}
	}
	return l
}

func (l *layer) forward(in []float64, out []float64) {
	for o := range l.W {
		s := l.B[o]
		row := l.W[o]
		for i, v := range in {
			s += row[i] * v
		}
		out[o] = l.Act.apply(s)
	}
}

// Network is a feed-forward regression network with one linear output.
type Network struct {
	cfg    Config
	layers []*layer
	// scratch buffers sized once to avoid per-forward allocations
	acts [][]float64
}

// New constructs a network with randomly initialized weights drawn from the
// seeded generator in cfg.Seed, so construction is fully deterministic.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{cfg: cfg}
	prev := cfg.InputDim
	for _, h := range cfg.Hidden {
		n.layers = append(n.layers, newLayer(prev, h, cfg.Activation, rng))
		prev = h
	}
	n.layers = append(n.layers, newLayer(prev, 1, Identity, rng))
	n.acts = make([][]float64, len(n.layers))
	for i, l := range n.layers {
		n.acts[i] = make([]float64, len(l.W))
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// NumParams returns the total number of weights and biases.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.B)
		for _, row := range l.W {
			total += len(row)
		}
	}
	return total
}

// Forward runs inference on a single (already normalized) input vector and
// returns the raw network output.
func (n *Network) Forward(x []float64) float64 {
	if len(x) != n.cfg.InputDim {
		panic(fmt.Sprintf("nn: Forward with %d inputs on a %d-input network", len(x), n.cfg.InputDim))
	}
	in := x
	for i, l := range n.layers {
		l.forward(in, n.acts[i])
		in = n.acts[i]
	}
	return in[0]
}

// forwardStore runs a forward pass writing the activations of every layer
// into dst (pre-sized like n.acts) and returns the output.
func (n *Network) forwardStore(x []float64, dst [][]float64) float64 {
	in := x
	for i, l := range n.layers {
		l.forward(in, dst[i])
		in = dst[i]
	}
	return in[0]
}

// snapshot is the serializable form of a network.
type snapshot struct {
	Config Config      `json:"config"`
	Layers []layerSnap `json:"layers"`
}

type layerSnap struct {
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
	Act Activation  `json:"act"`
}

// MarshalJSON serializes the full network (topology + weights) so trained
// models can be stored inside a remote system's costing profile.
func (n *Network) MarshalJSON() ([]byte, error) {
	s := snapshot{Config: n.cfg}
	for _, l := range n.layers {
		s.Layers = append(s.Layers, layerSnap{W: l.W, B: l.B, Act: l.Act})
	}
	return json.Marshal(s)
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("nn: decode network: %w", err)
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if len(s.Layers) != len(s.Config.Hidden)+1 {
		return fmt.Errorf("nn: snapshot has %d layers, config wants %d", len(s.Layers), len(s.Config.Hidden)+1)
	}
	n.cfg = s.Config
	n.layers = nil
	for _, ls := range s.Layers {
		l := &layer{W: ls.W, B: ls.B, Act: ls.Act}
		n.layers = append(n.layers, l)
	}
	n.acts = make([][]float64, len(n.layers))
	for i, l := range n.layers {
		n.acts[i] = make([]float64, len(l.W))
	}
	return nil
}
