package nn

import (
	"fmt"
	"math"

	"intellisphere/internal/parallel"
)

// batchBlock is the row count of one inference block. It doubles as the
// cache block: a block's input plane, output plane, and the layer's weight
// slab all stay resident while the kernel sweeps the block, and every batch
// entry point (ForwardBatch, PredictAll, rmse, gradient chunks) cuts its
// work into blocks of at most this many samples. It deliberately equals
// gradChunk so a training chunk is exactly one block.
const batchBlock = 64

// arena is the pooled scratch for batch-major inference: one packed
// row-major input plane plus two ping-pong activation planes. Arenas are
// reused across batches through the network's pool, so the steady-state
// batch path performs no per-sample (or per-batch) pool hits or heap
// allocations.
type arena struct {
	in   []float64 // [batchBlock × InputDim], packed row-major inputs
	a, b []float64 // [batchBlock × maxWidth] ping-pong activation planes
}

func (n *Network) newArena() *arena {
	return &arena{
		in: make([]float64, batchBlock*n.cfg.InputDim),
		a:  make([]float64, batchBlock*n.maxWidth),
		b:  make([]float64, batchBlock*n.maxWidth),
	}
}

func (n *Network) getArena() *arena   { return n.arenas.Get().(*arena) }
func (n *Network) putArena(ar *arena) { n.arenas.Put(ar) }

// forwardBlock runs one blocked matmul per layer over the first count rows
// packed in ar.in and writes the raw network outputs to dst[:count].
//
// Determinism contract: for every (sample, neuron) pair the dot product
// accumulates over the input index in ascending order with the bias as the
// initial value — exactly the order layer.forward uses — so each output is
// bit-identical to a per-sample Forward call. The batch-major loop order
// (neuron outer, sample inner, four samples per sweep) only changes which
// independent dot products run next to each other: one weight row is loaded
// once and swept across four samples at a time, so the CPU pipelines four
// independent accumulation chains instead of stalling on one — each chain
// still performs its own FP ops in the per-sample order.
func (n *Network) forwardBlock(ar *arena, count int, dst []float64) {
	in, inW := ar.in, n.cfg.InputDim
	cur, nxt := ar.a, ar.b
	for li := range n.layers {
		l := &n.layers[li]
		outW := l.out
		// 2×4 register tile: two weight rows sweep four samples at once, so
		// each input load feeds two FMA chains and the slice setup amortizes
		// over both dot products. Eight accumulators give the CPU eight
		// independent chains to pipeline.
		o := 0
		for ; o+2 <= outW; o += 2 {
			r0 := l.w[o*inW : (o+1)*inW]
			r1 := l.w[(o+1)*inW : (o+2)*inW]
			b0, b1 := l.b[o], l.b[o+1]
			s := 0
			for ; s+4 <= count; s += 4 {
				// The re-slices pin each row to len(r0) elements so the
				// compiler drops the bounds checks inside the hot loop.
				x0 := in[s*inW:][:len(r0)]
				x1 := in[(s+1)*inW:][:len(r0)]
				x2 := in[(s+2)*inW:][:len(r0)]
				x3 := in[(s+3)*inW:][:len(r0)]
				a0, a1, a2, a3 := b0, b0, b0, b0
				c0, c1, c2, c3 := b1, b1, b1, b1
				for i, w0 := range r0 {
					w1 := r1[i]
					v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
					a0 += w0 * v0
					a1 += w0 * v1
					a2 += w0 * v2
					a3 += w0 * v3
					c0 += w1 * v0
					c1 += w1 * v1
					c2 += w1 * v2
					c3 += w1 * v3
				}
				base := s*outW + o
				cur[base] = a0
				cur[base+1] = c0
				cur[base+outW] = a1
				cur[base+outW+1] = c1
				cur[base+2*outW] = a2
				cur[base+2*outW+1] = c2
				cur[base+3*outW] = a3
				cur[base+3*outW+1] = c3
			}
			for ; s < count; s++ {
				x := in[s*inW:][:len(r0)]
				s0, s1 := b0, b1
				for i, w0 := range r0 {
					v := x[i]
					s0 += w0 * v
					s1 += r1[i] * v
				}
				cur[s*outW+o] = s0
				cur[s*outW+o+1] = s1
			}
		}
		// Remainder neuron for odd layer widths (incl. the 1-wide output).
		for ; o < outW; o++ {
			row := l.w[o*inW : (o+1)*inW]
			bias := l.b[o]
			s := 0
			for ; s+4 <= count; s += 4 {
				x0 := in[s*inW:][:len(row)]
				x1 := in[(s+1)*inW:][:len(row)]
				x2 := in[(s+2)*inW:][:len(row)]
				x3 := in[(s+3)*inW:][:len(row)]
				s0, s1, s2, s3 := bias, bias, bias, bias
				for i, w := range row {
					s0 += w * x0[i]
					s1 += w * x1[i]
					s2 += w * x2[i]
					s3 += w * x3[i]
				}
				base := s*outW + o
				cur[base] = s0
				cur[base+outW] = s1
				cur[base+2*outW] = s2
				cur[base+3*outW] = s3
			}
			for ; s < count; s++ {
				x := in[s*inW : s*inW+inW]
				sum := bias
				for i, w := range row {
					sum += w * x[i]
				}
				cur[s*outW+o] = sum
			}
		}
		applyPlane(l.act, cur[:count*outW])
		in, inW = cur, outW
		cur, nxt = nxt, cur
	}
	// The output layer is a single linear neuron, so the final plane has
	// stride 1.
	copy(dst[:count], in[:count])
}

// applyPlane applies an activation element-wise over a whole pre-activation
// plane. Each element gets exactly the same scalar call apply would make, so
// values are bit-identical to the per-sample path; hoisting the activation
// switch out of the kernel's inner loop just removes a per-element branch.
func applyPlane(act Activation, plane []float64) {
	switch act {
	case Tanh:
		for j, v := range plane {
			plane[j] = math.Tanh(v)
		}
	case ReLU:
		// Mirror apply exactly: x ≤ 0 (including −0.0) becomes +0.0.
		for j, v := range plane {
			if v > 0 {
				plane[j] = v
			} else {
				plane[j] = 0
			}
		}
	case Sigmoid:
		for j, v := range plane {
			plane[j] = 1 / (1 + math.Exp(-v))
		}
	}
}

// packRows gathers input vectors into the arena's contiguous plane.
func (n *Network) packRows(ar *arena, xs [][]float64) {
	d := n.cfg.InputDim
	for s, row := range xs {
		copy(ar.in[s*d:(s+1)*d], row)
	}
}

// ForwardBatch runs inference over a batch of (already normalized) input
// vectors, writing the raw network outputs into dst (allocated when nil) and
// returning it. Outputs are bit-identical to calling Forward per row; the
// batch path just packs rows into a pooled arena and runs one blocked
// matmul per layer per block instead of paying a pool round-trip and a
// per-layer dispatch per sample. It is safe for concurrent use.
func (n *Network) ForwardBatch(xs [][]float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(xs))
	}
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("nn: ForwardBatch dst holds %d outputs for %d inputs", len(dst), len(xs)))
	}
	for i, row := range xs {
		if len(row) != n.cfg.InputDim {
			panic(fmt.Sprintf("nn: ForwardBatch row %d has %d inputs on a %d-input network", i, len(row), n.cfg.InputDim))
		}
	}
	ar := n.getArena()
	for lo := 0; lo < len(xs); lo += batchBlock {
		hi := lo + batchBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		n.packRows(ar, xs[lo:hi])
		n.forwardBlock(ar, hi-lo, dst[lo:hi])
	}
	n.putArena(ar)
	return dst
}

// forwardAll fans batched inference out across the worker pool: each block
// owns its slice of dst, so the result is identical at any worker count.
func (n *Network) forwardAll(workers int, xs [][]float64, dst []float64) {
	blocks := (len(xs) + batchBlock - 1) / batchBlock
	parallel.ForEachN(workers, blocks, func(bi int) {
		lo := bi * batchBlock
		hi := lo + batchBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		ar := n.getArena()
		n.packRows(ar, xs[lo:hi])
		n.forwardBlock(ar, hi-lo, dst[lo:hi])
		n.putArena(ar)
	})
}

// trainArena is the per-worker batch-major scratch for gradient
// accumulation: the gathered input plane plus one activation and one delta
// plane per layer, each sized for a full gradient chunk. A worker slot
// allocates its arena once and reuses it for every chunk it processes.
type trainArena struct {
	in     []float64   // [gradChunk × InputDim] gathered chunk inputs
	acts   [][]float64 // per layer, [gradChunk × layer.out]
	deltas [][]float64 // per layer, [gradChunk × layer.out]
}

func newTrainArena(n *Network) *trainArena {
	ar := &trainArena{
		in:     make([]float64, gradChunk*n.cfg.InputDim),
		acts:   make([][]float64, len(n.layers)),
		deltas: make([][]float64, len(n.layers)),
	}
	total := 0
	for i := range n.layers {
		total += n.layers[i].out
	}
	slab := make([]float64, 2*gradChunk*total)
	off := 0
	for i := range n.layers {
		w := gradChunk * n.layers[i].out
		ar.acts[i] = slab[off : off+w : off+w]
		off += w
		ar.deltas[i] = slab[off : off+w : off+w]
		off += w
	}
	return ar
}

// accumulateBatch adds the squared-error gradients of the samples x[idxs]
// into grads using batch-major kernels. The caller zeroes grads before the
// chunk, so every accumulator starts at 0 and each weight's additions happen
// in ascending sample order — the same floating-point sequence as calling
// accumulate per sample — which keeps trained weights bit-identical to the
// per-sample path (regression-tested in batch_test.go).
func (n *Network) accumulateBatch(x [][]float64, y []float64, idxs []int, ar *trainArena, grads *gradients) {
	count := len(idxs)
	d := n.cfg.InputDim
	for s, idx := range idxs {
		copy(ar.in[s*d:(s+1)*d], x[idx])
	}

	// Forward pass, storing every layer's activations batch-major.
	in, inW := ar.in, d
	for li := range n.layers {
		l := &n.layers[li]
		outW := l.out
		out := ar.acts[li]
		for o := 0; o < outW; o++ {
			row := l.w[o*inW : (o+1)*inW]
			bias := l.b[o]
			act := l.act
			for s := 0; s < count; s++ {
				xr := in[s*inW : s*inW+inW]
				sum := bias
				for i, v := range xr {
					sum += row[i] * v
				}
				out[s*outW+o] = act.apply(sum)
			}
		}
		in, inW = out, outW
	}

	// Output-layer deltas: d(0.5·(out−y)²)/d(pre-act) with identity output.
	last := len(n.layers) - 1
	outActs := ar.acts[last]
	outDeltas := ar.deltas[last]
	for s, idx := range idxs {
		outDeltas[s] = outActs[s] - y[idx]
	}

	// Backpropagate through hidden layers. Each (sample, neuron) delta is an
	// independent dot product over the next layer's neurons in ascending
	// order — the order accumulate uses.
	for li := last - 1; li >= 0; li-- {
		next := &n.layers[li+1]
		act := n.layers[li].act
		w := n.layers[li].out
		cur := ar.deltas[li]
		acts := ar.acts[li]
		nextDeltas := ar.deltas[li+1]
		for s := 0; s < count; s++ {
			base := s * w
			nd := nextDeltas[s*next.out : (s+1)*next.out]
			for o := 0; o < w; o++ {
				sum := 0.0
				for no, dv := range nd {
					sum += next.w[no*next.in+o] * dv
				}
				cur[base+o] = sum * act.derivative(acts[base+o])
			}
		}
	}

	// Accumulate weight/bias gradients. Per accumulator the additions run in
	// ascending sample order (grads was zeroed for this chunk), matching the
	// per-sample loop bit-for-bit; batching just keeps one gradient row hot
	// while the whole block streams through it.
	for li := range n.layers {
		l := &n.layers[li]
		inPlane, inW := ar.in, d
		if li > 0 {
			inPlane, inW = ar.acts[li-1], n.layers[li-1].out
		}
		dW := grads.w[li]
		dB := grads.b[li]
		deltas := ar.deltas[li]
		outW := l.out
		for o := 0; o < outW; o++ {
			row := dW[o*l.in : (o+1)*l.in]
			for s := 0; s < count; s++ {
				dlt := deltas[s*outW+o]
				dB[o] += dlt
				xr := inPlane[s*inW : s*inW+inW]
				for i, v := range xr {
					row[i] += dlt * v
				}
			}
		}
	}
}
