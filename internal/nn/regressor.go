package nn

import (
	"errors"
	"fmt"
	"math"

	"intellisphere/internal/parallel"
	"intellisphere/internal/stats"
)

// Normalizer rescales raw operator dimensions into the [0,1] ranges a tanh
// network trains well on, and (optionally) regresses the target in log space.
// Elapsed execution times span several orders of magnitude across the
// training configurations of Figure 10, so log-space targets substantially
// stabilize training; the ablation bench quantifies this choice.
type Normalizer struct {
	InMin  []float64 `json:"in_min"`
	InMax  []float64 `json:"in_max"`
	OutMin float64   `json:"out_min"`
	OutMax float64   `json:"out_max"`
	LogOut bool      `json:"log_out"`
}

// FitNormalizer learns min/max bounds from the training data. When logOut is
// set, targets pass through log1p before scaling.
func FitNormalizer(x [][]float64, y []float64, logOut bool) (*Normalizer, error) {
	if len(x) == 0 || len(y) == 0 {
		return nil, stats.ErrEmpty
	}
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	d := len(x[0])
	nm := &Normalizer{
		InMin:  make([]float64, d),
		InMax:  make([]float64, d),
		LogOut: logOut,
	}
	copy(nm.InMin, x[0])
	copy(nm.InMax, x[0])
	for _, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("nn: inconsistent input width %d (want %d)", len(row), d)
		}
		for i, v := range row {
			if v < nm.InMin[i] {
				nm.InMin[i] = v
			}
			if v > nm.InMax[i] {
				nm.InMax[i] = v
			}
		}
	}
	first := nm.target(y[0])
	nm.OutMin, nm.OutMax = first, first
	for _, v := range y[1:] {
		t := nm.target(v)
		if t < nm.OutMin {
			nm.OutMin = t
		}
		if t > nm.OutMax {
			nm.OutMax = t
		}
	}
	return nm, nil
}

func (nm *Normalizer) target(y float64) float64 {
	if nm.LogOut {
		if y < 0 {
			y = 0
		}
		return math.Log1p(y)
	}
	return y
}

func (nm *Normalizer) untarget(t float64) float64 {
	if nm.LogOut {
		return math.Expm1(t)
	}
	return t
}

// In normalizes a raw input vector into [0,1] per dimension. Values beyond
// the learned range extrapolate linearly past the bounds (this is exactly
// the regime where the paper shows raw networks degrade).
func (nm *Normalizer) In(x []float64) []float64 {
	return nm.InTo(make([]float64, 0, len(x)), x)
}

// InTo is the append-into variant of In: normalized values are appended to
// dst (reusing its capacity) and the extended slice is returned. Batch paths
// use it to normalize straight into pooled scratch without a per-row
// allocation.
func (nm *Normalizer) InTo(dst []float64, x []float64) []float64 {
	for i, v := range x {
		span := nm.InMax[i] - nm.InMin[i]
		if span == 0 {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, (v-nm.InMin[i])/span)
	}
	return dst
}

// Out normalizes a raw target.
func (nm *Normalizer) Out(y float64) float64 {
	span := nm.OutMax - nm.OutMin
	if span == 0 {
		return 0
	}
	return (nm.target(y) - nm.OutMin) / span
}

// Inverse maps a normalized network output back into raw target units.
func (nm *Normalizer) Inverse(t float64) float64 {
	span := nm.OutMax - nm.OutMin
	return nm.untarget(t*span + nm.OutMin)
}

// Regressor couples a trained network with its normalizer so callers predict
// directly in raw units (rows, bytes → seconds).
type Regressor struct {
	Net  *Network    `json:"net"`
	Norm *Normalizer `json:"norm"`
}

// RegressorConfig bundles everything needed to train a Regressor.
type RegressorConfig struct {
	Network   Config
	Train     TrainConfig
	LogOutput bool
}

// TrainRegressor normalizes the dataset, trains a fresh network on it, and
// returns the ready-to-use regressor together with the convergence history.
func TrainRegressor(x [][]float64, y []float64, cfg RegressorConfig) (*Regressor, *TrainResult, error) {
	norm, err := FitNormalizer(x, y, cfg.LogOutput)
	if err != nil {
		return nil, nil, err
	}
	net, err := New(cfg.Network)
	if err != nil {
		return nil, nil, err
	}
	nx := make([][]float64, len(x))
	ny := make([]float64, len(y))
	for i := range x {
		nx[i] = norm.In(x[i])
		ny[i] = norm.Out(y[i])
	}
	res, err := net.Train(nx, ny, cfg.Train)
	if err != nil {
		return nil, nil, err
	}
	return &Regressor{Net: net, Norm: norm}, res, nil
}

// Predict returns the regressor's estimate in raw target units.
func (r *Regressor) Predict(x []float64) float64 {
	return r.Norm.Inverse(r.Net.Forward(r.Norm.In(x)))
}

// PredictAll evaluates the regressor over a dataset through the batch-major
// kernels: blocks fan out across the worker pool, each normalizing its rows
// straight into a pooled arena (no per-row allocations) and running one
// blocked matmul per layer. Each block writes only its own slice of the
// output, so the result is identical to calling Predict per row.
func (r *Regressor) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	n := r.Net
	d := n.cfg.InputDim
	blocks := (len(x) + batchBlock - 1) / batchBlock
	parallel.ForEach(blocks, func(bi int) {
		lo := bi * batchBlock
		hi := lo + batchBlock
		if hi > len(x) {
			hi = len(x)
		}
		ar := n.getArena()
		for s, row := range x[lo:hi] {
			if len(row) != d {
				panic(fmt.Sprintf("nn: PredictAll row %d has %d inputs on a %d-input network", lo+s, len(row), d))
			}
			r.Norm.InTo(ar.in[s*d:s*d], row)
		}
		n.forwardBlock(ar, hi-lo, out[lo:hi])
		n.putArena(ar)
		for i := lo; i < hi; i++ {
			out[i] = r.Norm.Inverse(out[i])
		}
	})
	return out
}

// Retrain continues training the existing network on a (typically enlarged)
// dataset — this is the offline tuning step: logged executions are appended
// to the training set and the model re-fits. The normalizer bounds expand to
// cover the new data so previously out-of-range points become in-range.
func (r *Regressor) Retrain(x [][]float64, y []float64, tc TrainConfig) (*TrainResult, error) {
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	if len(x) == 0 {
		return nil, stats.ErrEmpty
	}
	for _, row := range x {
		for i, v := range row {
			if v < r.Norm.InMin[i] {
				r.Norm.InMin[i] = v
			}
			if v > r.Norm.InMax[i] {
				r.Norm.InMax[i] = v
			}
		}
	}
	for _, v := range y {
		t := r.Norm.target(v)
		if t < r.Norm.OutMin {
			r.Norm.OutMin = t
		}
		if t > r.Norm.OutMax {
			r.Norm.OutMax = t
		}
	}
	nx := make([][]float64, len(x))
	ny := make([]float64, len(y))
	for i := range x {
		nx[i] = r.Norm.In(x[i])
		ny[i] = r.Norm.Out(y[i])
	}
	return r.Net.Train(nx, ny, tc)
}

// RMSEPercent evaluates the paper's error metric for the regressor on a raw
// dataset.
func (r *Regressor) RMSEPercent(x [][]float64, y []float64) (float64, error) {
	return stats.RMSEPercent(r.PredictAll(x), y)
}

// TopologyResult records the cross-validation outcome for one candidate
// hidden-layer configuration.
type TopologyResult struct {
	Hidden   []int
	TestRMSE float64
}

// SearchTopology implements the paper's topology selection: two hidden
// layers, the first sized between the input dimensionality d and 2d, the
// second between 3 and half the first layer's width; each candidate is
// trained on 70% of the data and scored by RMSE on the held-out 30%, and the
// lowest-error topology wins. The split is deterministic given seed.
func SearchTopology(x [][]float64, y []float64, base RegressorConfig) (Config, []TopologyResult, error) {
	if len(x) != len(y) {
		return Config{}, nil, stats.ErrLengthMismatch
	}
	if len(x) < 10 {
		return Config{}, nil, errors.New("nn: topology search needs at least 10 samples")
	}
	d := base.Network.InputDim
	trainX, trainY, testX, testY, err := Split(x, y, 0.7, base.Network.Seed)
	if err != nil {
		return Config{}, nil, err
	}

	// Enumerate every candidate topology first, then train them across the
	// worker pool: each candidate is an independent training run, and the
	// candidate list is in a fixed order, so the fan-out changes nothing but
	// wall clock. The inner training runs are forced serial to keep the pool
	// bounded (training results are worker-count invariant anyway).
	var hiddens [][]int
	for h1 := d; h1 <= 2*d; h1++ {
		maxH2 := h1 / 2
		if maxH2 < 3 {
			maxH2 = 3
		}
		for h2 := 3; h2 <= maxH2; h2++ {
			hiddens = append(hiddens, []int{h1, h2})
		}
	}
	results, err := parallel.Map(len(hiddens), func(i int) (TopologyResult, error) {
		cfg := base
		cfg.Network.Hidden = hiddens[i]
		cfg.Train.Workers = 1
		reg, _, err := TrainRegressor(trainX, trainY, cfg)
		if err != nil {
			return TopologyResult{}, err
		}
		rm, err := stats.RMSE(reg.PredictAll(testX), testY)
		if err != nil {
			return TopologyResult{}, err
		}
		return TopologyResult{Hidden: hiddens[i], TestRMSE: rm}, nil
	})
	if err != nil {
		return Config{}, nil, err
	}
	best := Config{}
	bestErr := math.Inf(1)
	for _, r := range results {
		if r.TestRMSE < bestErr {
			bestErr = r.TestRMSE
			best = base.Network
			best.Hidden = r.Hidden
		}
	}
	return best, results, nil
}

// Split partitions a dataset into train/test shares deterministically. frac
// is the training share and must lie strictly inside (0,1); the dataset
// needs at least two samples so both shares end up non-empty.
func Split(x [][]float64, y []float64, frac float64, seed int64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	if len(x) != len(y) {
		return nil, nil, nil, nil, stats.ErrLengthMismatch
	}
	if len(x) < 2 {
		return nil, nil, nil, nil, fmt.Errorf("nn: Split needs at least 2 samples, got %d", len(x))
	}
	if !(frac > 0 && frac < 1) {
		return nil, nil, nil, nil, fmt.Errorf("nn: Split frac %v must lie in (0,1)", frac)
	}
	order, err := shuffledIndices(len(x), seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cut := int(frac * float64(len(x)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(x) {
		cut = len(x) - 1
	}
	for i, idx := range order {
		if i < cut {
			trainX = append(trainX, x[idx])
			trainY = append(trainY, y[idx])
		} else {
			testX = append(testX, x[idx])
			testY = append(testY, y[idx])
		}
	}
	return trainX, trainY, testX, testY, nil
}

func shuffledIndices(n int, seed int64) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("nn: shuffledIndices with negative count %d", n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// xorshift-style deterministic shuffle independent of math/rand to keep
	// the split stable even if the standard library's shuffle changes.
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}
