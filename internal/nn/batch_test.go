package nn

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// batchTestData builds a small deterministic dataset with count samples of
// the given width.
func batchTestData(count, dim int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, count)
	y := make([]float64, count)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = 0.4*row[0] + row[1]*row[dim-1]
	}
	return x, y
}

// ForwardBatch must be bit-identical to per-sample Forward, including on
// batch sizes that don't divide evenly into blocks.
func TestForwardBatchMatchesForward(t *testing.T) {
	n, err := New(Config{InputDim: 5, Hidden: []int{9, 4}, Activation: Tanh, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 3, batchBlock - 1, batchBlock, batchBlock + 1, 3*batchBlock + 17} {
		x, _ := batchTestData(count, 5, int64(count))
		got := n.ForwardBatch(x, nil)
		for i, row := range x {
			if want := n.Forward(row); got[i] != want {
				t.Fatalf("count=%d: ForwardBatch[%d] = %v, Forward = %v", count, i, got[i], want)
			}
		}
	}
}

// trainReference reruns Train's exact schedule (same shuffle, same optimizer
// steps) but accumulates gradients one sample at a time through the
// per-sample accumulate path — the pre-batch-kernel behavior the batch
// kernels must reproduce bit-for-bit.
func trainReference(t *testing.T, x [][]float64, y []float64, tc TrainConfig) []byte {
	t.Helper()
	n, err := New(Config{InputDim: len(x[0]), Hidden: []int{6, 3}, Activation: Tanh, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lr := tc.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	batch := tc.BatchSize
	if batch == 0 || batch > len(x) {
		batch = len(x)
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	grads := newGradients(n)
	chunkGrads := newGradients(n)
	sc := newActivations(n)
	vel := newGradients(n)
	adamM := newGradients(n)
	adamV := newGradients(n)
	adamT := 0
	for iter := 1; iter <= tc.Iterations; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			idxs := order[start:end]
			grads.zero()
			// Chunked exactly like Train: per-chunk private buffers reduced
			// in ascending chunk order.
			for cs := 0; cs < len(idxs); cs += gradChunk {
				ce := cs + gradChunk
				if ce > len(idxs) {
					ce = len(idxs)
				}
				chunkGrads.zero()
				for _, idx := range idxs[cs:ce] {
					n.accumulate(x[idx], y[idx], sc, chunkGrads)
				}
				grads.add(chunkGrads)
			}
			scale := 1 / float64(end-start)
			switch tc.Optimizer {
			case Adam:
				adamT++
				n.stepAdam(grads, adamM, adamV, adamT, lr, scale)
			default:
				n.stepSGD(grads, vel, tc.Momentum, lr, scale)
			}
		}
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The batch gradient kernel must produce weights bit-identical to the
// per-sample reference path, at any worker count and for batch sizes that
// leave partial chunks.
func TestTrainBatchMatchesPerSampleExactly(t *testing.T) {
	x, y := batchTestData(300, 3, 6)
	for _, tc := range []TrainConfig{
		{Iterations: 40, Optimizer: Adam, Seed: 4},                              // full batch, several chunks
		{Iterations: 40, Optimizer: SGD, Momentum: 0.9, Seed: 4, BatchSize: 50}, // partial chunks
		{Iterations: 25, Optimizer: Adam, Seed: 9, BatchSize: 7},                // sub-chunk batches
	} {
		want := trainReference(t, x, y, tc)
		for _, workers := range []int{1, 4} {
			n, err := New(Config{InputDim: 3, Hidden: []int{6, 3}, Activation: Tanh, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			run := tc
			run.Workers = workers
			if _, err := n.Train(x, y, run); err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(n)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("cfg=%+v workers=%d: batch-kernel weights differ from per-sample reference", tc, workers)
			}
		}
	}
}

// PredictAll must match per-row Predict bit-for-bit (it shares the batch
// kernel with ForwardBatch but adds normalization in and out).
func TestPredictAllMatchesPredict(t *testing.T) {
	x, y := batchTestData(150, 4, 3)
	reg, _, err := TrainRegressor(x, y, RegressorConfig{
		Network:   Config{InputDim: 4, Hidden: []int{8, 4}, Activation: Tanh, Seed: 2},
		Train:     TrainConfig{Iterations: 20, Optimizer: Adam, Seed: 2},
		LogOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := reg.PredictAll(x)
	for i, row := range x {
		if want := reg.Predict(row); got[i] != want {
			t.Fatalf("PredictAll[%d] = %v, Predict = %v", i, got[i], want)
		}
	}
}

func TestSplitGuards(t *testing.T) {
	x, y := batchTestData(10, 2, 1)
	cases := []struct {
		name    string
		x       [][]float64
		y       []float64
		frac    float64
		wantErr bool
	}{
		{"valid", x, y, 0.7, false},
		{"frac zero", x, y, 0, true},
		{"frac one", x, y, 1, true},
		{"frac negative", x, y, -0.3, true},
		{"frac above one", x, y, 1.5, true},
		{"frac NaN", x, y, nan(), true},
		{"length mismatch", x, y[:5], 0.7, true},
		{"single sample", x[:1], y[:1], 0.7, true},
		{"empty", nil, nil, 0.7, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tx, ty, sx, sy, err := Split(c.x, c.y, c.frac, 3)
			if c.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(tx) == 0 || len(sx) == 0 || len(tx) != len(ty) || len(sx) != len(sy) {
				t.Fatalf("bad split shapes: %d/%d train, %d/%d test", len(tx), len(ty), len(sx), len(sy))
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestShuffledIndicesGuards(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		wantLen int
		wantErr bool
	}{
		{"negative", -1, 0, true},
		{"very negative", -100, 0, true},
		{"zero", 0, 0, false},
		{"one", 1, 1, false},
		{"many", 17, 17, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			order, err := shuffledIndices(c.n, 9)
			if c.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(order) != c.wantLen {
				t.Fatalf("len = %d, want %d", len(order), c.wantLen)
			}
			seen := make(map[int]bool, len(order))
			for _, idx := range order {
				if idx < 0 || idx >= c.n || seen[idx] {
					t.Fatalf("order %v is not a permutation of [0,%d)", order, c.n)
				}
				seen[idx] = true
			}
		})
	}
}
