package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{InputDim: 4, Hidden: []int{8, 3}}, true},
		{"zero input", Config{InputDim: 0, Hidden: []int{8}}, false},
		{"no hidden", Config{InputDim: 4}, false},
		{"bad hidden width", Config{InputDim: 4, Hidden: []int{8, 0}}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() err = %v, ok = %v", c.name, err, c.ok)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: []int{6, 3}, Seed: 11}
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	in := []float64{0.1, 0.5, 0.9}
	if a.Forward(in) != b.Forward(in) {
		t.Error("same seed produced different networks")
	}
	cfg.Seed = 12
	c, _ := New(cfg)
	if a.Forward(in) == c.Forward(in) {
		t.Error("different seeds produced identical networks (unexpected)")
	}
}

func TestForwardPanicsOnWidth(t *testing.T) {
	n, _ := New(Config{InputDim: 2, Hidden: []int{3}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input width")
		}
	}()
	n.Forward([]float64{1})
}

func TestNumParams(t *testing.T) {
	n, _ := New(Config{InputDim: 2, Hidden: []int{3}})
	// layer1: 3*2 weights + 3 biases; output: 1*3 + 1 = 13
	if got := n.NumParams(); got != 13 {
		t.Errorf("NumParams = %d, want 13", got)
	}
}

func TestActivationString(t *testing.T) {
	if Tanh.String() != "tanh" || ReLU.String() != "relu" ||
		Sigmoid.String() != "sigmoid" || Identity.String() != "identity" {
		t.Error("unexpected activation names")
	}
	if Activation(99).String() != "Activation(99)" {
		t.Error("unexpected fallback name")
	}
}

func TestActivationDerivatives(t *testing.T) {
	// Verify derivative(out) against a numerical derivative of apply(x).
	for _, a := range []Activation{Tanh, Sigmoid, Identity} {
		for _, x := range []float64{-1.5, -0.2, 0.3, 2.0} {
			h := 1e-6
			num := (a.apply(x+h) - a.apply(x-h)) / (2 * h)
			got := a.derivative(a.apply(x))
			if math.Abs(num-got) > 1e-5 {
				t.Errorf("%v derivative at %v = %v, numerical %v", a, x, got, num)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivative(ReLU.apply(2)) != 1 || ReLU.derivative(ReLU.apply(-2)) != 0 {
		t.Error("ReLU derivative incorrect")
	}
}

func TestTrainLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 0.3*x[i][0] + 0.5*x[i][1]
	}
	n, err := New(Config{InputDim: 2, Hidden: []int{6, 3}, Activation: Tanh, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := n.Train(x, y, TrainConfig{Iterations: 300, LearningRate: 0.02, Optimizer: Adam, BatchSize: 32, Seed: 1, CheckEvery: 100})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.FinalRMSE > 0.02 {
		t.Errorf("final RMSE = %v, want < 0.02", res.FinalRMSE)
	}
	if len(res.History) != 3 {
		t.Errorf("history has %d points, want 3", len(res.History))
	}
}

func TestTrainLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([][]float64, 400)
	y := make([]float64, 400)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0] * x[i][1] // product: not linearly representable
	}
	n, _ := New(Config{InputDim: 2, Hidden: []int{8, 4}, Activation: Tanh, Seed: 2})
	res, err := n.Train(x, y, TrainConfig{Iterations: 500, LearningRate: 0.02, Optimizer: Adam, BatchSize: 32, Seed: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.FinalRMSE > 0.03 {
		t.Errorf("final RMSE = %v, want < 0.03 for x*y", res.FinalRMSE)
	}
}

func TestTrainSGDMomentum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = 0.8 * x[i][0]
	}
	n, _ := New(Config{InputDim: 1, Hidden: []int{4}, Activation: Tanh, Seed: 5})
	res, err := n.Train(x, y, TrainConfig{Iterations: 400, LearningRate: 0.05, Momentum: 0.9, Optimizer: SGD, Seed: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.FinalRMSE > 0.03 {
		t.Errorf("SGD final RMSE = %v, want < 0.03", res.FinalRMSE)
	}
}

func TestTrainErrors(t *testing.T) {
	n, _ := New(Config{InputDim: 2, Hidden: []int{3}})
	if _, err := n.Train(nil, nil, TrainConfig{Iterations: 1}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []float64{1}, TrainConfig{}); err == nil {
		t.Error("expected error for zero iterations")
	}
	if _, err := n.Train([][]float64{{1}}, []float64{1}, TrainConfig{Iterations: 1}); err == nil {
		t.Error("expected error for wrong sample width")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []float64{1, 2}, TrainConfig{Iterations: 1}); err == nil {
		t.Error("expected error for x/y mismatch")
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = x[i][0] * 2
	}
	run := func() float64 {
		n, _ := New(Config{InputDim: 1, Hidden: []int{4}, Seed: 3})
		_, err := n.Train(x, y, TrainConfig{Iterations: 50, Optimizer: Adam, Seed: 3})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		return n.Forward([]float64{0.5})
	}
	if run() != run() {
		t.Error("training with identical seeds diverged")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	x := [][]float64{{10, 100}, {20, 300}, {30, 200}}
	y := []float64{1, 9, 4}
	for _, logOut := range []bool{false, true} {
		nm, err := FitNormalizer(x, y, logOut)
		if err != nil {
			t.Fatalf("FitNormalizer: %v", err)
		}
		for _, v := range y {
			got := nm.Inverse(nm.Out(v))
			if math.Abs(got-v) > 1e-9 {
				t.Errorf("logOut=%v: round trip %v -> %v", logOut, v, got)
			}
		}
		in := nm.In([]float64{10, 300})
		if in[0] != 0 || in[1] != 1 {
			t.Errorf("In() = %v, want [0 1]", in)
		}
	}
}

func TestNormalizerConstantDim(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}}
	y := []float64{1, 2}
	nm, err := FitNormalizer(x, y, false)
	if err != nil {
		t.Fatalf("FitNormalizer: %v", err)
	}
	if got := nm.In([]float64{5, 1.5})[0]; got != 0 {
		t.Errorf("constant dim normalized to %v, want 0", got)
	}
}

func TestNormalizerErrors(t *testing.T) {
	if _, err := FitNormalizer(nil, nil, false); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := FitNormalizer([][]float64{{1}}, []float64{1, 2}, false); err == nil {
		t.Error("expected error for mismatch")
	}
	if _, err := FitNormalizer([][]float64{{1, 2}, {1}}, []float64{1, 2}, false); err == nil {
		t.Error("expected error for ragged input")
	}
}

func TestRegressorPredictRawUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i] = []float64{rng.Float64() * 1e6, rng.Float64() * 1000}
		y[i] = x[i][0]*1e-5 + x[i][1]*0.01 + 3
	}
	reg, res, err := TrainRegressor(x, y, RegressorConfig{
		Network: Config{InputDim: 2, Hidden: []int{6, 3}, Activation: Tanh, Seed: 7},
		Train:   TrainConfig{Iterations: 400, LearningRate: 0.02, Optimizer: Adam, BatchSize: 32, Seed: 7},
	})
	if err != nil {
		t.Fatalf("TrainRegressor: %v", err)
	}
	if res.FinalRMSE > 0.05 {
		t.Errorf("normalized RMSE = %v too high", res.FinalRMSE)
	}
	pct, err := reg.RMSEPercent(x, y)
	if err != nil {
		t.Fatalf("RMSEPercent: %v", err)
	}
	if pct > 10 {
		t.Errorf("RMSE%% = %v, want < 10", pct)
	}
}

func TestRegressorRetrainExpandsBounds(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	reg, _, err := TrainRegressor(x, y, RegressorConfig{
		Network: Config{InputDim: 1, Hidden: []int{4}, Seed: 1},
		Train:   TrainConfig{Iterations: 50, Optimizer: Adam, Seed: 1},
	})
	if err != nil {
		t.Fatalf("TrainRegressor: %v", err)
	}
	if reg.Norm.InMax[0] != 4 {
		t.Fatalf("InMax = %v, want 4", reg.Norm.InMax[0])
	}
	if _, err := reg.Retrain([][]float64{{10}}, []float64{10}, TrainConfig{Iterations: 10, Optimizer: Adam, Seed: 1}); err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	if reg.Norm.InMax[0] != 10 {
		t.Errorf("InMax after retrain = %v, want 10", reg.Norm.InMax[0])
	}
	if _, err := reg.Retrain(nil, nil, TrainConfig{Iterations: 1}); err == nil {
		t.Error("expected error retraining on empty data")
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	n, _ := New(Config{InputDim: 3, Hidden: []int{5, 3}, Activation: Tanh, Seed: 21})
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	in := []float64{0.2, 0.4, 0.6}
	if n.Forward(in) != back.Forward(in) {
		t.Error("round-tripped network predicts differently")
	}
}

func TestNetworkUnmarshalErrors(t *testing.T) {
	var n Network
	if err := json.Unmarshal([]byte(`{"config":{"input_dim":0,"hidden":[2]},"layers":[]}`), &n); err == nil {
		t.Error("expected validation error")
	}
	if err := json.Unmarshal([]byte(`{"config":{"input_dim":2,"hidden":[2]},"layers":[]}`), &n); err == nil {
		t.Error("expected layer-count error")
	}
	if err := json.Unmarshal([]byte(`not json`), &n); err == nil {
		t.Error("expected decode error")
	}
}

func TestSplitDeterministicAndComplete(t *testing.T) {
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = float64(i)
	}
	tx1, ty1, sx1, sy1, err := Split(x, y, 0.7, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	tx2, _, _, _, err := Split(x, y, 0.7, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(tx1) != 70 || len(sx1) != 30 {
		t.Fatalf("split sizes = %d/%d, want 70/30", len(tx1), len(sx1))
	}
	for i := range tx1 {
		if tx1[i][0] != tx2[i][0] {
			t.Fatal("Split not deterministic")
		}
	}
	seen := map[float64]bool{}
	for i := range ty1 {
		seen[ty1[i]] = true
	}
	for i := range sy1 {
		if seen[sy1[i]] {
			t.Fatal("train/test share a sample")
		}
		seen[sy1[i]] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split lost samples: %d", len(seen))
	}
}

func TestSearchTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := make([][]float64, 120)
	y := make([]float64, 120)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = x[i][0] + x[i][1]*x[i][2] + 0.1*x[i][3]
	}
	best, results, err := SearchTopology(x, y, RegressorConfig{
		Network: Config{InputDim: 4, Activation: Tanh, Seed: 3},
		Train:   TrainConfig{Iterations: 60, LearningRate: 0.02, Optimizer: Adam, BatchSize: 16, Seed: 3},
	})
	if err != nil {
		t.Fatalf("SearchTopology: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("no topologies evaluated")
	}
	// Paper constraints: layer1 in [d, 2d], layer2 in [3, max(3, layer1/2)].
	for _, r := range results {
		if r.Hidden[0] < 4 || r.Hidden[0] > 8 {
			t.Errorf("layer1 = %d out of [4,8]", r.Hidden[0])
		}
		lim := r.Hidden[0] / 2
		if lim < 3 {
			lim = 3
		}
		if r.Hidden[1] < 3 || r.Hidden[1] > lim {
			t.Errorf("layer2 = %d out of [3,%d]", r.Hidden[1], lim)
		}
	}
	if len(best.Hidden) != 2 {
		t.Errorf("best topology %v does not have two layers", best.Hidden)
	}
	// The winner must have the minimal recorded test RMSE.
	min := math.Inf(1)
	for _, r := range results {
		if r.TestRMSE < min {
			min = r.TestRMSE
		}
	}
	for _, r := range results {
		if r.Hidden[0] == best.Hidden[0] && r.Hidden[1] == best.Hidden[1] && r.TestRMSE != min {
			t.Errorf("best topology RMSE %v != min %v", r.TestRMSE, min)
		}
	}
}

func TestSearchTopologyErrors(t *testing.T) {
	if _, _, err := SearchTopology([][]float64{{1}}, []float64{1}, RegressorConfig{Network: Config{InputDim: 1}}); err == nil {
		t.Error("expected error for tiny dataset")
	}
}

// Property: normalizer Out/Inverse round-trips any positive target.
func TestNormalizerRoundTripProperty(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{0.1, 1000}
	nm, err := FitNormalizer(x, y, true)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v float64) bool {
		v = math.Abs(v)
		if v > 1e12 || math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := nm.Inverse(nm.Out(v))
		return math.Abs(got-v) <= 1e-6*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Forward is a pure function — identical inputs give identical
// outputs and the input slice is never modified.
func TestForwardPureProperty(t *testing.T) {
	n, _ := New(Config{InputDim: 3, Hidden: []int{5, 3}, Activation: Tanh, Seed: 99})
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		in := []float64{clamp(a), clamp(b), clamp(c)}
		cp := append([]float64(nil), in...)
		o1 := n.Forward(in)
		o2 := n.Forward(in)
		if o1 != o2 {
			return false
		}
		for i := range in {
			if in[i] != cp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
