//go:build !race

package nn

import "testing"

// Allocation-count tests live behind !race: the race detector deliberately
// drops sync.Pool items, so pooled-arena paths re-allocate under -race and
// the counts below would be meaningless.

// The batched PredictAll must not allocate per row: one output slice per
// call, with normalization writing into the pooled arena.
func TestPredictAllAllocs(t *testing.T) {
	x, y := batchTestData(batchBlock, 4, 5) // single block → serial path, clean count
	reg, _, err := TrainRegressor(x, y, RegressorConfig{
		Network: Config{InputDim: 4, Hidden: []int{8, 4}, Activation: Tanh, Seed: 2},
		Train:   TrainConfig{Iterations: 5, Optimizer: Adam, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		reg.PredictAll(x)
	})
	// One allocation for the output slice; allow one more for a pool refill
	// after an unlucky GC.
	if allocs > 2 {
		t.Errorf("PredictAll allocates %.1f times per call, want ≤ 2", allocs)
	}
}

// ForwardBatch with a caller-provided destination and a warm arena pool is
// allocation-free.
func TestForwardBatchAllocs(t *testing.T) {
	n, err := New(Config{InputDim: 5, Hidden: []int{9, 4}, Activation: Tanh, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := batchTestData(batchBlock, 5, 7)
	dst := make([]float64, len(x))
	n.ForwardBatch(x, dst) // warm the arena pool
	allocs := testing.AllocsPerRun(100, func() {
		n.ForwardBatch(x, dst)
	})
	if allocs > 1 {
		t.Errorf("ForwardBatch allocates %.1f times per call, want ≤ 1", allocs)
	}
}
