package nn

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchData builds a join-model-shaped training set: 7 input dimensions,
// 4096 samples (about what a paper-scale join workload yields).
func benchData() ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		row := make([]float64, 7)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0]*row[1] + 0.5*row[2] + row[3]*row[4]*0.2 + 0.1*row[5] - 0.3*row[6]
	}
	return x, y
}

func benchTrain(b *testing.B, workers int) {
	x, y := benchData()
	cfg := Config{InputDim: 7, Hidden: []int{14, 7}, Activation: Tanh, Seed: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.Train(x, y, TrainConfig{
			Iterations: 10, LearningRate: 0.01, BatchSize: 256,
			Optimizer: Adam, Seed: 5, Workers: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNTrain compares serial (Workers=1) against pool-parallel
// mini-batch training. Both variants produce bit-identical weights; the
// delta is pure wall clock.
func BenchmarkNNTrain(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTrain(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchTrain(b, runtime.GOMAXPROCS(0)) })
}
