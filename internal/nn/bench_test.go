package nn

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchData builds a join-model-shaped training set: 7 input dimensions,
// 4096 samples (about what a paper-scale join workload yields).
func benchData() ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		row := make([]float64, 7)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0]*row[1] + 0.5*row[2] + row[3]*row[4]*0.2 + 0.1*row[5] - 0.3*row[6]
	}
	return x, y
}

func benchTrain(b *testing.B, workers int) {
	x, y := benchData()
	cfg := Config{InputDim: 7, Hidden: []int{14, 7}, Activation: Tanh, Seed: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.Train(x, y, TrainConfig{
			Iterations: 10, LearningRate: 0.01, BatchSize: 256,
			Optimizer: Adam, Seed: 5, Workers: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNTrain compares serial (Workers=1) against pool-parallel
// mini-batch training. Both variants produce bit-identical weights; the
// delta is pure wall clock.
func BenchmarkNNTrain(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTrain(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchTrain(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkForwardBatch compares per-sample Forward calls against the
// batch-major kernel over one full block (64 samples, the training chunk
// size). The "kernel" pair isolates the matmul restructuring with a linear
// activation; the "tanh" pair is the end-to-end join-model shape, where
// math.Tanh (identical work on both sides, roughly half the block time) caps
// the achievable ratio. Outputs are bit-identical in every pair; the delta
// is cache behavior and per-sample dispatch overhead.
func BenchmarkForwardBatch(b *testing.B) {
	cases := []struct {
		name string
		act  Activation
	}{
		{"kernel", Identity},
		{"tanh", Tanh},
	}
	for _, bc := range cases {
		x, _ := benchData()
		x = x[:batchBlock]
		n, err := New(Config{InputDim: 7, Hidden: []int{14, 7}, Activation: bc.act, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]float64, len(x))
		b.Run(bc.name+"/per-sample", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, row := range x {
					dst[j] = n.Forward(row)
				}
			}
		})
		b.Run(bc.name+"/batch", func(b *testing.B) {
			n.ForwardBatch(x, dst) // warm the arena pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.ForwardBatch(x, dst)
			}
		})
	}
}

// BenchmarkPredictAll measures batched regressor evaluation over the full
// 4096-sample set, normalization included.
func BenchmarkPredictAll(b *testing.B) {
	x, y := benchData()
	reg, _, err := TrainRegressor(x, y, RegressorConfig{
		Network: Config{InputDim: 7, Hidden: []int{14, 7}, Activation: Tanh, Seed: 5},
		Train:   TrainConfig{Iterations: 2, LearningRate: 0.01, BatchSize: 256, Optimizer: Adam, Seed: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.PredictAll(x)
	}
}
