package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"intellisphere/internal/parallel"
	"intellisphere/internal/stats"
)

// Optimizer selects the weight-update rule.
type Optimizer int

// Supported optimizers.
const (
	SGD Optimizer = iota // stochastic gradient descent with momentum
	Adam
)

// gradChunk is the fixed shard size for gradient accumulation. Each batch is
// cut into contiguous chunks of this many samples; chunks accumulate into
// private buffers and are reduced in chunk order, so the summation order —
// and therefore every trained weight — is bit-identical for any worker
// count. The value matches the default mini-batch size of the paper's
// training configurations, keeping single-chunk batches on the fast path.
const gradChunk = 64

// TrainConfig controls a training run. An "iteration" is one pass over the
// training set (the unit the paper's convergence plots use on their x axis).
type TrainConfig struct {
	Iterations   int       // number of epochs; must be positive
	LearningRate float64   // step size; defaults to 0.01 if zero
	BatchSize    int       // mini-batch size; 0 means full batch; negative is an error
	Momentum     float64   // SGD momentum (ignored by Adam)
	Optimizer    Optimizer // SGD or Adam
	Seed         int64     // shuffling seed
	CheckEvery   int       // record the training RMSE every N iterations (0 = never)
	// Workers bounds the gradient-accumulation pool for this run. 0 uses the
	// process-wide default (parallel.Workers); 1 forces serial execution.
	// Results are identical either way — the knob only trades wall clock.
	Workers int
}

// ConvergencePoint is one sample of the training-set RMSE during training,
// used to reproduce the paper's Figures 11(b) and 12(b).
type ConvergencePoint struct {
	Iteration int
	RMSE      float64
}

// TrainResult summarizes a completed run.
type TrainResult struct {
	History   []ConvergencePoint
	FinalRMSE float64
}

// gradients holds one flat buffer per layer, mirroring the network's slabs.
type gradients struct {
	w [][]float64 // per layer, [out*in]
	b [][]float64 // per layer, [out]
}

func newGradients(n *Network) *gradients {
	g := &gradients{
		w: make([][]float64, len(n.layers)),
		b: make([][]float64, len(n.layers)),
	}
	for li := range n.layers {
		g.w[li] = make([]float64, len(n.layers[li].w))
		g.b[li] = make([]float64, len(n.layers[li].b))
	}
	return g
}

func (g *gradients) zero() {
	for li := range g.w {
		clear(g.w[li])
		clear(g.b[li])
	}
}

// add folds another gradient buffer into g (the ordered chunk reduction).
func (g *gradients) add(o *gradients) {
	for li := range g.w {
		dst, src := g.w[li], o.w[li]
		for i := range dst {
			dst[i] += src[i]
		}
		dstB, srcB := g.b[li], o.b[li]
		for i := range dstB {
			dstB[i] += srcB[i]
		}
	}
}

// gradWorker is the per-chunk accumulation state: a private gradient buffer
// plus a batch-major forward/backward arena. Everything is allocated once per
// worker slot, so processing a chunk allocates nothing.
type gradWorker struct {
	grads *gradients
	arena *trainArena
}

// Train fits the network on (x, y) with mean-squared-error loss. Inputs are
// expected to be normalized already (see Normalizer); Train does not scale.
//
// Gradient accumulation is data-parallel: each mini-batch is sharded into
// fixed-size chunks spread across a bounded worker pool, and the per-chunk
// gradients are reduced in chunk order. The chunk layout depends only on the
// batch size, so training is deterministic for a fixed seed and produces
// bit-identical weights at every worker count.
func (n *Network) Train(x [][]float64, y []float64, tc TrainConfig) (*TrainResult, error) {
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	if len(x) == 0 {
		return nil, stats.ErrEmpty
	}
	if tc.Iterations <= 0 {
		return nil, errors.New("nn: Iterations must be positive")
	}
	if tc.BatchSize < 0 {
		return nil, fmt.Errorf("nn: BatchSize %d must be non-negative (0 selects full batch)", tc.BatchSize)
	}
	for i, row := range x {
		if len(row) != n.cfg.InputDim {
			return nil, fmt.Errorf("nn: sample %d has %d dims, network wants %d", i, len(row), n.cfg.InputDim)
		}
	}
	lr := tc.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	batch := tc.BatchSize
	if batch == 0 || batch > len(x) {
		batch = len(x)
	}

	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}

	grads := newGradients(n)
	// Momentum / Adam state, shaped like the gradients.
	vel := newGradients(n)
	adamM := newGradients(n)
	adamV := newGradients(n)
	adamT := 0

	workers := tc.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}

	// The reducer and its worker states (gradient buffers + batch arenas) are
	// built once for the whole run, and the four callbacks are hoisted out of
	// the batch loop — only the idxs variable they capture is reassigned per
	// batch — so the steady-state training loop performs zero heap
	// allocations and spawns no goroutines per mini-batch.
	red := parallel.NewReducer(batch, gradChunk, workers, func() *gradWorker {
		return &gradWorker{grads: newGradients(n), arena: newTrainArena(n)}
	})
	defer red.Close()
	var idxs []int
	reset := func(w *gradWorker) { w.grads.zero() }
	process := func(w *gradWorker, cs, ce int) {
		n.accumulateBatch(x, y, idxs[cs:ce], w.arena, w.grads)
	}
	reduce := func(w *gradWorker) { grads.add(w.grads) }

	res := &TrainResult{}
	for iter := 1; iter <= tc.Iterations; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			idxs = order[start:end]
			grads.zero()
			red.Run(len(idxs), reset, process, reduce)
			scale := 1 / float64(end-start)
			switch tc.Optimizer {
			case Adam:
				adamT++
				n.stepAdam(grads, adamM, adamV, adamT, lr, scale)
			default:
				n.stepSGD(grads, vel, tc.Momentum, lr, scale)
			}
		}
		if tc.CheckEvery > 0 && (iter%tc.CheckEvery == 0 || iter == tc.Iterations) {
			res.History = append(res.History, ConvergencePoint{Iteration: iter, RMSE: n.rmse(x, y, workers)})
		}
	}
	res.FinalRMSE = n.rmse(x, y, workers)
	return res, nil
}

// accumulate adds the gradient of the squared error at (xi, yi) into grads,
// one sample at a time. The training loop itself runs accumulateBatch (see
// batch.go); this per-sample form is kept as the bit-identity reference the
// batch kernel is regression-tested against.
func (n *Network) accumulate(xi []float64, yi float64, sc *activations, grads *gradients) {
	out := n.forwardStore(xi, sc.acts)
	last := len(n.layers) - 1

	// Output layer delta: d(0.5*(out-y)²)/d(pre-act) with identity output.
	sc.deltas[last][0] = out - yi

	// Backpropagate through hidden layers.
	for li := last - 1; li >= 0; li-- {
		next := &n.layers[li+1]
		act := n.layers[li].act
		cur := sc.deltas[li]
		nextDeltas := sc.deltas[li+1]
		for o := range cur {
			s := 0.0
			for no := 0; no < next.out; no++ {
				s += next.w[no*next.in+o] * nextDeltas[no]
			}
			cur[o] = s * act.derivative(sc.acts[li][o])
		}
	}

	// Accumulate weight/bias gradients.
	for li := range n.layers {
		l := &n.layers[li]
		in := xi
		if li > 0 {
			in = sc.acts[li-1]
		}
		dW := grads.w[li]
		dB := grads.b[li]
		deltas := sc.deltas[li]
		for o := 0; o < l.out; o++ {
			d := deltas[o]
			dB[o] += d
			row := dW[o*l.in : (o+1)*l.in]
			for i, v := range in {
				row[i] += d * v
			}
		}
	}
}

func (n *Network) stepSGD(grads, vel *gradients, momentum, lr, scale float64) {
	for li := range n.layers {
		l := &n.layers[li]
		vw, gw := vel.w[li], grads.w[li]
		for i := range l.w {
			vw[i] = momentum*vw[i] - lr*gw[i]*scale
			l.w[i] += vw[i]
		}
		vb, gb := vel.b[li], grads.b[li]
		for o := range l.b {
			vb[o] = momentum*vb[o] - lr*gb[o]*scale
			l.b[o] += vb[o]
		}
	}
}

func (n *Network) stepAdam(grads, m, v *gradients, t int, lr, scale float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	for li := range n.layers {
		l := &n.layers[li]
		mw, vw, gw := m.w[li], v.w[li], grads.w[li]
		for i := range l.w {
			g := gw[i] * scale
			mw[i] = beta1*mw[i] + (1-beta1)*g
			vw[i] = beta2*vw[i] + (1-beta2)*g*g
			l.w[i] -= lr * (mw[i] / bc1) / (math.Sqrt(vw[i]/bc2) + eps)
		}
		mb, vb, gb := m.b[li], v.b[li], grads.b[li]
		for o := range l.b {
			g := gb[o] * scale
			mb[o] = beta1*mb[o] + (1-beta1)*g
			vb[o] = beta2*vb[o] + (1-beta2)*g*g
			l.b[o] -= lr * (mb[o] / bc1) / (math.Sqrt(vb[o]/bc2) + eps)
		}
	}
}

// rmse computes the network's RMSE over a normalized dataset. Batched
// predictions fan out across the pool (each block owns its slice of the
// output); the squared errors are then summed serially in index order,
// keeping the value independent of the worker count.
func (n *Network) rmse(x [][]float64, y []float64, workers int) float64 {
	pred := make([]float64, len(x))
	n.forwardAll(workers, x, pred)
	ss := 0.0
	for i := range pred {
		d := pred[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}
