package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"intellisphere/internal/stats"
)

// Optimizer selects the weight-update rule.
type Optimizer int

// Supported optimizers.
const (
	SGD Optimizer = iota // stochastic gradient descent with momentum
	Adam
)

// TrainConfig controls a training run. An "iteration" is one pass over the
// training set (the unit the paper's convergence plots use on their x axis).
type TrainConfig struct {
	Iterations   int       // number of epochs; must be positive
	LearningRate float64   // step size; defaults to 0.01 if zero
	BatchSize    int       // mini-batch size; 0 means full batch
	Momentum     float64   // SGD momentum (ignored by Adam)
	Optimizer    Optimizer // SGD or Adam
	Seed         int64     // shuffling seed
	CheckEvery   int       // record the training RMSE every N iterations (0 = never)
}

// ConvergencePoint is one sample of the training-set RMSE during training,
// used to reproduce the paper's Figures 11(b) and 12(b).
type ConvergencePoint struct {
	Iteration int
	RMSE      float64
}

// TrainResult summarizes a completed run.
type TrainResult struct {
	History   []ConvergencePoint
	FinalRMSE float64
}

// gradients mirrors the network's layer shapes.
type gradients struct {
	dW [][][]float64
	dB [][]float64
}

func newGradients(n *Network) *gradients {
	g := &gradients{}
	for _, l := range n.layers {
		dw := make([][]float64, len(l.W))
		for o := range dw {
			dw[o] = make([]float64, len(l.W[o]))
		}
		g.dW = append(g.dW, dw)
		g.dB = append(g.dB, make([]float64, len(l.B)))
	}
	return g
}

func (g *gradients) zero() {
	for li := range g.dW {
		for o := range g.dW[li] {
			for i := range g.dW[li][o] {
				g.dW[li][o][i] = 0
			}
			g.dB[li][o] = 0
		}
	}
}

// Train fits the network on (x, y) with mean-squared-error loss. Inputs are
// expected to be normalized already (see Normalizer); Train does not scale.
func (n *Network) Train(x [][]float64, y []float64, tc TrainConfig) (*TrainResult, error) {
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	if len(x) == 0 {
		return nil, stats.ErrEmpty
	}
	if tc.Iterations <= 0 {
		return nil, errors.New("nn: Iterations must be positive")
	}
	for i, row := range x {
		if len(row) != n.cfg.InputDim {
			return nil, fmt.Errorf("nn: sample %d has %d dims, network wants %d", i, len(row), n.cfg.InputDim)
		}
	}
	lr := tc.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	batch := tc.BatchSize
	if batch <= 0 || batch > len(x) {
		batch = len(x)
	}

	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}

	grads := newGradients(n)
	// Momentum / Adam state, shaped like the gradients.
	vel := newGradients(n)
	adamM := newGradients(n)
	adamV := newGradients(n)
	adamT := 0

	// Per-layer activations and deltas for backprop.
	acts := make([][]float64, len(n.layers))
	deltas := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		acts[i] = make([]float64, len(l.W))
		deltas[i] = make([]float64, len(l.W))
	}

	res := &TrainResult{}
	for iter := 1; iter <= tc.Iterations; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			grads.zero()
			for _, idx := range order[start:end] {
				n.accumulate(x[idx], y[idx], acts, deltas, grads)
			}
			scale := 1 / float64(end-start)
			switch tc.Optimizer {
			case Adam:
				adamT++
				n.stepAdam(grads, adamM, adamV, adamT, lr, scale)
			default:
				n.stepSGD(grads, vel, tc.Momentum, lr, scale)
			}
		}
		if tc.CheckEvery > 0 && (iter%tc.CheckEvery == 0 || iter == tc.Iterations) {
			res.History = append(res.History, ConvergencePoint{Iteration: iter, RMSE: n.rmse(x, y)})
		}
	}
	res.FinalRMSE = n.rmse(x, y)
	return res, nil
}

// accumulate adds the gradient of the squared error at (xi, yi) into grads.
func (n *Network) accumulate(xi []float64, yi float64, acts, deltas [][]float64, grads *gradients) {
	out := n.forwardStore(xi, acts)
	last := len(n.layers) - 1

	// Output layer delta: d(0.5*(out-y)²)/d(pre-act) with identity output.
	deltas[last][0] = out - yi

	// Backpropagate through hidden layers.
	for li := last - 1; li >= 0; li-- {
		next := n.layers[li+1]
		for o := range deltas[li] {
			s := 0.0
			for no := range next.W {
				s += next.W[no][o] * deltas[li+1][no]
			}
			deltas[li][o] = s * n.layers[li].Act.derivative(acts[li][o])
		}
	}

	// Accumulate weight/bias gradients.
	for li, l := range n.layers {
		in := xi
		if li > 0 {
			in = acts[li-1]
		}
		for o := range l.W {
			d := deltas[li][o]
			grads.dB[li][o] += d
			row := grads.dW[li][o]
			for i, v := range in {
				row[i] += d * v
			}
		}
	}
}

func (n *Network) stepSGD(grads, vel *gradients, momentum, lr, scale float64) {
	for li, l := range n.layers {
		for o := range l.W {
			for i := range l.W[o] {
				vel.dW[li][o][i] = momentum*vel.dW[li][o][i] - lr*grads.dW[li][o][i]*scale
				l.W[o][i] += vel.dW[li][o][i]
			}
			vel.dB[li][o] = momentum*vel.dB[li][o] - lr*grads.dB[li][o]*scale
			l.B[o] += vel.dB[li][o]
		}
	}
}

func (n *Network) stepAdam(grads, m, v *gradients, t int, lr, scale float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	for li, l := range n.layers {
		for o := range l.W {
			for i := range l.W[o] {
				g := grads.dW[li][o][i] * scale
				m.dW[li][o][i] = beta1*m.dW[li][o][i] + (1-beta1)*g
				v.dW[li][o][i] = beta2*v.dW[li][o][i] + (1-beta2)*g*g
				l.W[o][i] -= lr * (m.dW[li][o][i] / bc1) / (math.Sqrt(v.dW[li][o][i]/bc2) + eps)
			}
			g := grads.dB[li][o] * scale
			m.dB[li][o] = beta1*m.dB[li][o] + (1-beta1)*g
			v.dB[li][o] = beta2*v.dB[li][o] + (1-beta2)*g*g
			l.B[o] -= lr * (m.dB[li][o] / bc1) / (math.Sqrt(v.dB[li][o]/bc2) + eps)
		}
	}
}

// rmse computes the network's RMSE over a normalized dataset.
func (n *Network) rmse(x [][]float64, y []float64) float64 {
	ss := 0.0
	for i := range x {
		d := n.Forward(x[i]) - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}
