#!/bin/sh
# Smoke test for cmd/serve: build the binary, start it, issue one query and
# one metrics scrape, then shut it down via SIGTERM and check it exits
# cleanly. Used by `make smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${SMOKE_ADDR:-127.0.0.1:18080}
BIN=$(mktemp -d)/serve
LOG=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

$GO build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -warm >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up (training the demo models takes a moment).
i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

# -warm logs one line per statement that failed to plan; any such line means
# the demo statement mix has drifted from the demo catalog.
if grep -q 'warm "' "$LOG"; then
    echo "smoke: plan-cache warm-up failed; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

out=$(curl -sf "http://$ADDR/query" -d '{"sql": "SELECT a1 FROM t10000_100 WHERE a1 < 100"}')
echo "$out" | grep -q '"actual_sec"' || { echo "smoke: bad /query response: $out" >&2; exit 1; }

out=$(curl -sf "http://$ADDR/query/batch" \
    -d '["SELECT a1 FROM t10000_100 WHERE a1 < 100", {"sql": "SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2"}, "SELECT a1 FROM no_such_table"]')
echo "$out" | grep -q '"actual_sec"' || { echo "smoke: bad /query/batch response: $out" >&2; exit 1; }
echo "$out" | grep -q '"error"' || { echo "smoke: /query/batch lost the per-statement error: $out" >&2; exit 1; }

out=$(curl -sf "http://$ADDR/metrics")
echo "$out" | grep -q '"plan_cache"' || { echo "smoke: bad /metrics response: $out" >&2; exit 1; }

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "smoke: server did not shut down; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
PID=

echo "smoke: ok"
