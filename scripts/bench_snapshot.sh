#!/bin/sh
# Record the perf trajectory: run the benchmark suite and emit a JSON
# snapshot (ns/op, and B/op + allocs/op where the benchmark reports them)
# keyed by benchmark name. Used by `make bench-snapshot` (full run, writes
# BENCH_PR6.json; earlier snapshots like BENCH_PR4.json are historical
# records and are never overwritten) and by `make ci` (BENCHTIME=1x smoke
# into a throwaway file, just to prove the suite and the parser still work).
set -eu

GO=${GO:-go}
OUT=${BENCH_OUT:-BENCH_PR6.json}
BENCHTIME=${BENCHTIME:-1s}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
    pkg=$1
    pattern=$2
    $GO test "$pkg" -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" | tee -a "$TMP"
}

run ./internal/nn 'BenchmarkNNTrain|BenchmarkForwardBatch|BenchmarkPredictAll'
run ./internal/optimizer 'BenchmarkOptimizerPlan'
run ./internal/engine 'BenchmarkExplain|BenchmarkServeQueryBatch'
run ./internal/server 'BenchmarkStreamVsHTTP'

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") bytes = $i
        else if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (allocs != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
    printf "}"
}
END { print "\n}" }
' "$TMP" >"$OUT"

echo "bench snapshot written to $OUT"
