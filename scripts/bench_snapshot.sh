#!/bin/sh
# Record the perf trajectory: run the benchmark suite and emit a JSON
# snapshot (ns/op, and B/op + allocs/op where the benchmark reports them)
# keyed by benchmark name. Used by `make bench-snapshot` (full run, writes
# BENCH_PR10.json; earlier snapshots like BENCH_PR4.json / BENCH_PR6.json /
# BENCH_PR9.json are historical records and are never overwritten) and by
# `make ci` (BENCHTIME=1x smoke into a throwaway file, just to prove the
# suite and the parser still work).
#
# The parallel suite (internal/engine Benchmark*Parallel) runs under a
# -cpu sweep (BENCH_CPUS, default 1,4,8); its entries keep the GOMAXPROCS
# suffix as a /cpu=N key component, and a trailing "scaling" object reports
# the lowest-vs-highest-cpu throughput ratio per benchmark along with the
# host's available core count — scaling ratios measured on a host with fewer
# cores than the sweep asks for are bounded by the hardware, not the code.
set -eu

GO=${GO:-go}
OUT=${BENCH_OUT:-BENCH_PR10.json}
BENCHTIME=${BENCHTIME:-1s}
BENCH_CPUS=${BENCH_CPUS:-1,4,8}
NPROC=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -1 )
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
    pkg=$1
    pattern=$2
    $GO test "$pkg" -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" | tee -a "$TMP"
}

runp() {
    pkg=$1
    pattern=$2
    $GO test "$pkg" -run '^$' -bench "$pattern" -benchtime "$BENCHTIME" -cpu "$BENCH_CPUS" | tee -a "$TMP"
}

run ./internal/nn 'BenchmarkNNTrain|BenchmarkForwardBatch|BenchmarkPredictAll'
run ./internal/optimizer 'BenchmarkOptimizerPlan'
run ./internal/engine 'BenchmarkExplain$|BenchmarkServeQueryBatch$'
run ./internal/server 'BenchmarkStreamVsHTTP'
runp ./internal/engine 'BenchmarkExplainParallel|BenchmarkQueryParallel|BenchmarkServeQueryBatchParallel'

awk -v nproc="$NPROC" '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    cpu = 1
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") bytes = $i
        else if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (name ~ /Parallel/) {
        # Parallel suite: the GOMAXPROCS suffix is the point — keep it as a
        # key component and remember ns/op per (benchmark, cpu) for the
        # scaling summary.
        key = name "/cpu=" cpu
        pns[name, cpu] = ns
        if (!(name in pmin) || cpu + 0 < pmin[name]) pmin[name] = cpu + 0
        if (!(name in pmax) || cpu + 0 > pmax[name]) pmax[name] = cpu + 0
        pseen[name] = 1
    } else {
        key = name
    }
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", key, $2, ns
    if (allocs != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
    printf "}"
}
END {
    if (!first) printf ",\n"
    printf "  \"scaling\": {\"host_cpus\": %s", nproc
    for (name in pseen) {
        lo = pmin[name]; hi = pmax[name]
        nlo = pns[name, lo]; nhi = pns[name, hi]
        if (nlo == "" || nhi == "" || nhi + 0 == 0) continue
        printf ",\n    \"%s\": {\"cpu%s_ns\": %s, \"cpu%s_ns\": %s, \"throughput_x\": %.2f}", \
            name, lo, nlo, hi, nhi, nlo / nhi
    }
    print "}"
    print "}"
}
' "$TMP" >"$OUT"

echo "bench snapshot written to $OUT"
