#!/bin/sh
# Streaming-protocol smoke: build cmd/serve with a deliberately tiny
# admission gate, pipeline 100 statements down ONE /query/stream connection
# and assert the length-prefixed responses come back complete and in order,
# then saturate the gate (a held-open stream owns the only slot) and assert
# the over-queue arrival sheds with 503 + Retry-After while the queued
# request still completes. Used by `make stream-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${SMOKE_ADDR:-127.0.0.1:18083}
WORK=$(mktemp -d)
BIN=$WORK/serve
LOG=$WORK/serve.log
FIFO=$WORK/stream.fifo

cleanup() {
    exec 9>&- 2>/dev/null || true
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

$GO build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -max-inflight 1 -queue-depth 1 >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "stream-smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "stream-smoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

# --- 1. Pipelining: 100 statements, one connection, in-order frames. -----
# Each statement carries its sequence number as the predicate literal; the
# response echoes the SQL back, so frame order is checkable from the echoes
# (the encoder HTML-escapes '<' to \u003c, hence the pattern below).
N=100
seq 1 $N | awk '{printf "SELECT a1 FROM t10000_100 WHERE a1 < %d\n", $1}' |
    curl -sf --no-buffer --max-time 120 -X POST \
        -H 'Content-Type: application/x-ndjson' --data-binary @- \
        "http://$ADDR/query/stream" >"$WORK/frames"

got=$(grep -c '"sql"' "$WORK/frames" || true)
if [ "$got" -ne "$N" ]; then
    echo "stream-smoke: want $N response frames, got $got" >&2
    exit 1
fi
grep -o 'WHERE a1 \\u003c [0-9]*' "$WORK/frames" | awk '{print $NF}' >"$WORK/order"
if ! seq 1 $N | cmp -s - "$WORK/order"; then
    echo "stream-smoke: frames out of order; got:" >&2
    head -20 "$WORK/order" >&2
    exit 1
fi
# Every frame must announce its exact body length on the preceding line.
awk '
    body > 0 { body -= length($0) + 1; next }
    /^[0-9]+$/ { frames++; body = $1; next }
    { print "unframed line: " $0; exit 1 }
    END { if (body != 0) { print "last frame truncated"; exit 1 } }
' "$WORK/frames" || { echo "stream-smoke: bad length-prefix framing" >&2; exit 1; }

# --- 2. Saturation: stream holds the one slot, third arrival sheds. ------
# The fifo keeps the request body open, so the connection — and its
# admission slot — stays held until fd 9 closes. (curl buffers the response
# until its upload ends, so the slot is observed via the admission gauge,
# not the frame; the frame itself is checked after the close below.)
mkfifo "$FIFO"
curl -s --no-buffer --max-time 120 -X POST \
    -H 'Content-Type: application/x-ndjson' -T "$FIFO" \
    "http://$ADDR/query/stream" >"$WORK/holdframes" &
HOLD=$!
exec 9>"$FIFO"
printf 'SELECT a1 FROM t10000_100 WHERE a1 < 50\n' >&9

i=0
until curl -s "http://$ADDR/metrics/prom" | grep -q '^intellisphere_admission_in_flight 1'; do
    i=$((i + 1))
    [ "$i" -ge 100 ] || { sleep 0.1; continue; }
    echo "stream-smoke: held stream never took the admission slot" >&2
    exit 1
done

# Second request occupies the single queue slot. (Children forked from here
# on would inherit fd 9 and keep the fifo — and so the stream's admission
# slot — alive past the exec 9>&- below; close it in each of them.)
curl -s --max-time 60 -o "$WORK/queued" -w '%{http_code}' \
    "http://$ADDR/query?q=SELECT+a1+FROM+t10000_100+WHERE+a1+%3C+10" >"$WORK/queued_code" 9>&- &
QWAIT=$!
i=0
until curl -s "http://$ADDR/metrics/prom" | grep -q '^intellisphere_admission_queued 1'; do
    i=$((i + 1))
    [ "$i" -ge 100 ] || { sleep 0.1; continue; }
    echo "stream-smoke: second request never queued" >&2
    exit 1
done

# ...so the third must shed: 503, Retry-After, and no long wait.
code=$(curl -s --max-time 10 -D "$WORK/shed_headers" -o /dev/null -w '%{http_code}' \
    "http://$ADDR/query?q=SELECT+a1+FROM+t10000_100+WHERE+a1+%3C+10" 9>&-)
if [ "$code" != "503" ]; then
    echo "stream-smoke: want 503 from saturated gate, got $code" >&2
    exit 1
fi
if ! grep -qi '^retry-after: [0-9]' "$WORK/shed_headers"; then
    echo "stream-smoke: 503 without Retry-After; headers:" >&2
    cat "$WORK/shed_headers" >&2
    exit 1
fi

# Close the stream: its slot frees, the queued request completes normally
# and the held connection's one frame reaches the client.
exec 9>&-
wait "$QWAIT"
wait "$HOLD" || { echo "stream-smoke: held stream curl failed" >&2; exit 1; }
qcode=$(cat "$WORK/queued_code")
if [ "$qcode" != "200" ]; then
    echo "stream-smoke: queued request finished $qcode, want 200" >&2
    curl -s "http://$ADDR/metrics/prom" | grep '^intellisphere_admission' >&2
    exit 1
fi
grep -q '"sql"' "$WORK/holdframes" ||
    { echo "stream-smoke: held stream returned no frame" >&2; exit 1; }

curl -s "http://$ADDR/metrics/prom" >"$WORK/prom"
grep -q '^intellisphere_admission_shed_queue_full_total 1' "$WORK/prom" ||
    { echo "stream-smoke: shed counter missing" >&2; grep admission "$WORK/prom" >&2; exit 1; }
grep -q '^intellisphere_stream_statements_total 101' "$WORK/prom" ||
    { echo "stream-smoke: stream statement counter wrong" >&2; grep stream "$WORK/prom" >&2; exit 1; }

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "stream-smoke: server did not shut down; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
PID=

echo "stream-smoke: ok"
