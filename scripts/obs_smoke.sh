#!/bin/sh
# Continuous-observability smoke for cmd/serve: start the server with tight
# SLO windows and a wide-event log, then walk the whole pipeline — a traced
# query whose trace ID correlates a /events wide event to /trace, the
# /history time-series filling in, an error burst driving the availability
# SLO to firing and a clean stretch resolving it, exemplars in the
# /metrics/prom exposition, and the NDJSON event log on disk. Used by
# `make obs-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${OBS_SMOKE_ADDR:-127.0.0.1:18085}
DIR=$(mktemp -d)
BIN=$DIR/serve
LOG=$DIR/serve.log
EVLOG=$DIR/events.ndjson

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: $1" >&2
    shift
    for extra in "$@"; do echo "$extra" >&2; done
    exit 1
}

$GO build -o "$BIN" ./cmd/serve

# Tight windows so the firing → resolved cycle fits in seconds: 250ms
# collector ticks, a 1s fast / 3s slow burn window, and a low burn factor.
"$BIN" -addr "$ADDR" \
    -event-log "$EVLOG" -event-sample 1 \
    -obs-step 250ms -slo-fast 1s -slo-slow 3s -slo-burn 2 \
    -slo-availability 0.999 >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "server did not come up; log:" "$(cat "$LOG")"
    kill -0 "$PID" 2>/dev/null || fail "server exited early; log:" "$(cat "$LOG")"
    sleep 0.5
done

# A traced query becomes a wide event carrying the trace ID.
curl -sf "http://$ADDR/query?trace=1" \
    -d '{"sql": "SELECT a2, COUNT(a1) FROM t1000000_100 GROUP BY a2"}' >/dev/null ||
    fail "traced query failed"
events=$(curl -sf "http://$ADDR/events?n=10")
echo "$events" | grep -q '"stmt_hash"' || fail "/events has no wide events: $events"
tid=$(echo "$events" | sed -n 's/.*"trace_id": \([0-9][0-9]*\).*/\1/p' | head -1)
[ -n "$tid" ] || fail "no event carries a trace_id: $events"
curl -sf "http://$ADDR/trace" | grep -q "\"id\": $tid" ||
    fail "event trace_id $tid does not resolve on /trace"

# The exposition carries OpenMetrics exemplars referencing the same traces.
curl -sf "http://$ADDR/metrics/prom" | grep -q ' # {trace_id="' ||
    fail "/metrics/prom has no histogram exemplars"

# An error burst long enough to heat both burn windows: every statement
# fails, so the availability objective burns far past its factor.
end=$(($(date +%s) + 20))
while [ "$(date +%s)" -lt "$end" ]; do
    curl -s "http://$ADDR/query?q=SELECT+nope+FROM" >/dev/null || true
    if curl -sf "http://$ADDR/slo" | grep -q '"state": "firing"'; then
        fired=1
        break
    fi
    sleep 0.2
done
[ -n "${fired:-}" ] || fail "availability SLO never fired under a pure-error burst" \
    "$(curl -sf "http://$ADDR/slo")"
curl -sf "http://$ADDR/health" | grep -q '"firing": [1-9]' ||
    fail "/health does not surface the firing SLO" "$(curl -sf "http://$ADDR/health")"

# A clean stretch of healthy queries drains both windows; hysteresis then
# resolves the alert.
end=$(($(date +%s) + 30))
while [ "$(date +%s)" -lt "$end" ]; do
    curl -s "http://$ADDR/query?q=SELECT+a1+FROM+t10000_100" >/dev/null || true
    if curl -sf "http://$ADDR/slo" | grep -q '"resolved_total": [1-9]'; then
        resolved=1
        break
    fi
    sleep 0.2
done
[ -n "${resolved:-}" ] || fail "availability SLO never resolved after the burst ended" \
    "$(curl -sf "http://$ADDR/slo")"

# The embedded history has accumulated samples covering the cycle.
hist=$(curl -sf "http://$ADDR/history?window=1m")
echo "$hist" | grep -q '"qps"' || fail "/history has no samples: $hist"
echo "$hist" | grep -q '"error_rate"' || fail "/history samples lack error_rate: $hist"

# ?errors=1 filters the ring down to the burst's failures.
errs=$(curl -sf "http://$ADDR/events?errors=1&n=5")
echo "$errs" | grep -q '"outcome": "error"' || fail "/events?errors=1 empty: $errs"
echo "$errs" | grep -q '"outcome": "ok"' && fail "/events?errors=1 leaked ok events: $errs"

# The NDJSON sink has the events on disk, one JSON object per line.
[ -s "$EVLOG" ] || fail "event log $EVLOG is empty"
head -1 "$EVLOG" | grep -q '"kind":' || fail "event log first line is not a wide event: $(head -1 "$EVLOG")"

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 60 ] && fail "server did not shut down; log:" "$(cat "$LOG")"
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
PID=

echo "obs-smoke: ok"
