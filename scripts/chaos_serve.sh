#!/bin/sh
# Chaos test for cmd/serve: build the binary with the race detector, start
# it with a tight circuit breaker, force a hive outage through the /faults
# control plane, and verify the federation keeps answering with degraded
# plans, /health flips to 503 with an open breaker, and both recover after
# the outage lifts. Used by `make chaos` and CI.
set -eu

GO=${GO:-go}
ADDR=${CHAOS_ADDR:-127.0.0.1:18081}
BIN=$(mktemp -d)/serve
LOG=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

$GO build -race -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -breaker-failures 2 -breaker-open-timeout 2s >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up (training the demo models takes a moment;
# the race-instrumented build is slower still).
i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 240 ]; then
        echo "chaos: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "chaos: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

# t10000000_1000 is hive-owned with a spark replica; its size keeps the
# optimizer's healthy placement on hive, so a hive outage must show up.
QUERY='{"sql": "SELECT a5, COUNT(a1) FROM t10000000_1000 GROUP BY a5"}'

fail() {
    echo "chaos: $1" >&2
    shift
    [ $# -gt 0 ] && echo "  $*" >&2
    echo "server log:" >&2
    cat "$LOG" >&2
    exit 1
}

# 1. Healthy baseline: query answers undegraded, /health is 200/ok.
out=$(curl -sf "http://$ADDR/query" -d "$QUERY")
echo "$out" | grep -q '"degraded"' && fail "healthy query already degraded" "$out"
out=$(curl -sf "http://$ADDR/health")
echo "$out" | grep -q '"status": "ok"' || fail "bad healthy /health" "$out"

# 2. Outage: queries keep answering via the spark replica with the fallback
# recorded, and enough failures open hive's breaker.
curl -sf "http://$ADDR/faults" -d '{"system": "hive", "outage": true}' >/dev/null \
    || fail "could not force the outage"
i=0
while :; do
    out=$(curl -sf "http://$ADDR/query" -d "$QUERY") || fail "query failed during outage"
    echo "$out" | grep -q '"degraded": true' || fail "outage query not degraded" "$out"
    echo "$out" | grep -q '"hive"' || fail "outage query does not record hive exclusion" "$out"
    health=$(curl -s "http://$ADDR/health")
    if echo "$health" | grep -q '"open"'; then
        break
    fi
    i=$((i + 1))
    [ "$i" -ge 10 ] && fail "breaker never opened" "$health"
done
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/health")
[ "$code" = "503" ] || fail "/health during outage returned $code, want 503"
out=$(curl -s "http://$ADDR/health")
echo "$out" | grep -q '"status": "degraded"' || fail "bad outage /health" "$out"
out=$(curl -sf "http://$ADDR/faults")
echo "$out" | grep -q '"down": true' || fail "injector not reported down" "$out"

# 3. Recovery: lift the outage, wait out the open window, and watch the
# breaker half-open then close as queries return to the primary.
curl -sf "http://$ADDR/faults" -d '{"system": "hive", "outage": false}' >/dev/null \
    || fail "could not lift the outage"
i=0
while :; do
    sleep 1
    out=$(curl -sf "http://$ADDR/query" -d "$QUERY") || fail "query failed after recovery"
    if ! echo "$out" | grep -q '"degraded": true'; then
        break
    fi
    i=$((i + 1))
    [ "$i" -ge 15 ] && fail "queries still degraded after recovery" "$out"
done
out=$(curl -sf "http://$ADDR/health")
echo "$out" | grep -q '"status": "ok"' || fail "/health did not recover" "$out"
echo "$out" | grep -q '"state": "closed"' || fail "hive breaker did not close" "$out"

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        fail "server did not shut down"
    fi
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
PID=

if grep -q "DATA RACE" "$LOG"; then
    fail "race detected"
fi

echo "chaos: ok"
