#!/bin/sh
# Crash-recovery smoke for cmd/serve: start the server with a data
# directory, mutate durable state through the admin surface (register +
# materialize a table, install a QueryGrid link override), capture the
# rendered plans, SIGKILL the process, restart it against the same
# directory, and verify the mutations survived and /explain answers
# byte-identical plans. Then exercise the graceful path: SIGTERM writes a
# shutdown snapshot, and the next boot must recover from it with nothing to
# replay. Used by `make crash-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${CRASH_ADDR:-127.0.0.1:18084}
BIN=$(mktemp -d)/serve
LOG=$(mktemp)
DATA=$(mktemp -d)

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")" "$DATA"
}
trap cleanup EXIT

fail() {
    echo "crash: $1" >&2
    shift
    [ $# -gt 0 ] && echo "  $*" >&2
    echo "server log:" >&2
    cat "$LOG" >&2
    exit 1
}

start_server() {
    "$BIN" -addr "$ADDR" -data-dir "$DATA" >>"$LOG" 2>&1 &
    PID=$!
    i=0
    until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 120 ] && fail "server did not come up"
        kill -0 "$PID" 2>/dev/null || fail "server exited early"
        sleep 0.5
    done
}

$GO build -o "$BIN" ./cmd/serve
start_server

# 1. Durable mutations: a new table (registered + materialized in one
#    request) and a link override on hive. Both must ack with 200.
TABLE='{"name": "crash_t1", "system": "hive", "rows": 5000, "schema": {"columns": [
  {"name": "a1", "type": 0, "width": 8, "duplication": 1},
  {"name": "a5", "type": 0, "width": 8, "duplication": 5}]}}'
out=$(curl -sf "http://$ADDR/catalog" -d "{\"table\": $TABLE, \"materialize\": \"crash_t1\"}") \
    || fail "catalog mutation rejected"
echo "$out" | grep -q '"materialized": *true' || fail "table not materialized" "$out"
curl -sf "http://$ADDR/links" \
    -d '{"system": "hive", "link": {"bandwidth_bytes_per_sec": 5e7, "latency_sec": 0.1, "per_row_overhead_us": 1}}' \
    >/dev/null || fail "link mutation rejected"

# 2. Capture the plans the recovered server must reproduce byte-identically.
Q1="SELECT crash_t1.a1 FROM crash_t1 JOIN t100000_100 ON crash_t1.a1 = t100000_100.a1"
Q2="SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2"
before1=$(curl -sf -G "http://$ADDR/explain" --data-urlencode "q=$Q1") || fail "explain Q1 failed"
before2=$(curl -sf -G "http://$ADDR/explain" --data-urlencode "q=$Q2") || fail "explain Q2 failed"

# 3. SIGKILL — no shutdown hook runs; recovery must come from the WAL.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
start_server

out=$(curl -sf "http://$ADDR/health")
echo "$out" | grep -q '"durability"' || fail "/health has no durability block" "$out"
echo "$out" | grep -q '"replayed": *[1-9]' || fail "recovery replayed no WAL records" "$out"

after1=$(curl -sf -G "http://$ADDR/explain" --data-urlencode "q=$Q1") || fail "post-crash explain Q1 failed"
after2=$(curl -sf -G "http://$ADDR/explain" --data-urlencode "q=$Q2") || fail "post-crash explain Q2 failed"
[ "$before1" = "$after1" ] || fail "Q1 plan diverged across SIGKILL" "$after1"
[ "$before2" = "$after2" ] || fail "Q2 plan diverged across SIGKILL" "$after2"
curl -sf "http://$ADDR/catalog" | grep -q '"crash_t1"' || fail "registered table lost across SIGKILL"

# 4. Graceful SIGTERM writes a shutdown snapshot; the next boot restores it
#    with an empty WAL and the same plans.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 60 ] && fail "server did not exit on SIGTERM"
    sleep 0.5
done
ls "$DATA"/snap-*.json >/dev/null 2>&1 || fail "no snapshot on disk after SIGTERM"
start_server

out=$(curl -sf "http://$ADDR/health")
echo "$out" | grep -q '"restored": *true' || fail "boot after SIGTERM did not restore the snapshot" "$out"
echo "$out" | grep -q '"replayed": *0' || fail "snapshot boot still replayed WAL records" "$out"
final1=$(curl -sf -G "http://$ADDR/explain" --data-urlencode "q=$Q1") || fail "post-snapshot explain failed"
[ "$before1" = "$final1" ] || fail "Q1 plan diverged across snapshot restore" "$final1"

kill "$PID" 2>/dev/null || true
echo "crash smoke OK: WAL replay and snapshot restore both byte-identical"
