#!/bin/sh
# Observability smoke for cmd/serve: start the server with pprof enabled,
# run a traced query and assert the span tree names, fetch the trace ring,
# check /metrics/prom looks like the Prometheus text exposition, and hit
# one pprof endpoint. Used by `make trace-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${TRACE_SMOKE_ADDR:-127.0.0.1:18082}
BIN=$(mktemp -d)/serve
LOG=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

$GO build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -pprof >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "trace-smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "trace-smoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

# A traced query must return the span tree with the full pipeline: parse,
# plan with candidate costing spans, execute with a per-step operator span.
out=$(curl -sf "http://$ADDR/query?trace=1" \
    -d '{"sql": "SELECT a2, COUNT(a1) FROM t1000000_100 GROUP BY a2"}')
for want in '"trace"' '"trace_text"' 'parse' 'plan' 'cost on ' 'execute' 'aggregation on '; do
    echo "$out" | grep -q "$want" || {
        echo "trace-smoke: traced /query response missing $want: $out" >&2
        exit 1
    }
done

# The ring replays it on /trace in both shapes.
curl -sf "http://$ADDR/trace" | grep -q '"root"' || {
    echo "trace-smoke: /trace JSON missing span tree" >&2
    exit 1
}
curl -sf "http://$ADDR/trace?format=text" | grep -q 'trace #1' || {
    echo "trace-smoke: /trace text rendering missing trace #1" >&2
    exit 1
}

# /metrics/prom must speak the text exposition format: TYPE comments, the
# serving counters, a cumulative histogram with an +Inf bucket, and the
# labeled estimator-accuracy gauges.
prom=$(curl -sf "http://$ADDR/metrics/prom")
for want in \
    '# TYPE intellisphere_queries_total counter' \
    '# TYPE intellisphere_parse_seconds histogram' \
    'intellisphere_parse_seconds_bucket{le="+Inf"}' \
    'intellisphere_estimator_mean_q_error{system=' \
    'intellisphere_breaker_state{system='; do
    echo "$prom" | grep -qF "$want" || {
        echo "trace-smoke: /metrics/prom missing $want" >&2
        echo "$prom" | head -40 >&2
        exit 1
    }
done
# Every non-comment line is "name[{labels}] value", optionally followed by
# an OpenMetrics exemplar (" # {labels} value timestamp") on bucket lines.
bad=$(echo "$prom" | grep -v '^#' | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+( # \{[^{}]*\} [-+0-9.eE]+( [-+0-9.eE]+)?)?$' || true)
if [ -n "$bad" ]; then
    echo "trace-smoke: malformed exposition lines:" >&2
    echo "$bad" >&2
    exit 1
fi

# -pprof mounts the profiling surface.
curl -sf "http://$ADDR/debug/pprof/cmdline" >/dev/null || {
    echo "trace-smoke: /debug/pprof/cmdline not served" >&2
    exit 1
}

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "trace-smoke: server did not shut down; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
PID=

echo "trace-smoke: ok"
