#!/bin/sh
# Drift-tuner smoke for cmd/serve: start the server with the blackbox
# "flink" remote (logical-op, retrainable cost models) and a fast background
# tuner, inject a 20x latency regime on flink through /faults so its
# aggregation model drifts, and verify the loop closes end to end: the tuner
# retrains a candidate from the executed-query log, shadow-scores it, and
# promotes it (tune counters + /models version lineage), the drift flag
# clears, and a rollback through POST /models restores the initial model.
# Used by `make tuner-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${TUNER_ADDR:-127.0.0.1:18083}
BIN=$(mktemp -d)/serve
LOG=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

$GO build -o "$BIN" ./cmd/serve

"$BIN" -addr "$ADDR" -logical-remote \
    -tune-interval 250ms -tune-holdout 2 -tune-min-log 4 >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up — -logical-remote trains three neural
# models at startup, which takes a moment.
i=0
until curl -sf "http://$ADDR/profiles" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 240 ]; then
        echo "tuner: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "tuner: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done

fail() {
    echo "tuner: $1" >&2
    shift
    [ $# -gt 0 ] && echo "  $*" >&2
    echo "server log:" >&2
    cat "$LOG" >&2
    exit 1
}

# 1. Baseline: flink is listed as tunable with no version history yet, and
#    no tune pass has run.
out=$(curl -sf "http://$ADDR/models")
echo "$out" | grep -q '"system": *"flink"' || fail "/models does not list flink" "$out"
echo "$out" | grep -q '"promotions": *0' || fail "tune counters not zero at baseline" "$out"

# 2. Drift regime: every flink call now takes 20x its estimate, so executed
#    queries log actuals far above the model's predictions.
out=$(curl -sf "http://$ADDR/faults" \
    -d '{"system":"flink","rates":{"latency":1,"latency_factor":20}}')
echo "$out" | grep -q '"system": *"flink"' || fail "arming flink latency faults failed" "$out"

# 3. Execute enough flink aggregations to fill the model's log past
#    -tune-min-log + -tune-holdout.
QUERY='{"sql": "SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10"}'
j=0
while [ "$j" -lt 10 ]; do
    curl -sf "http://$ADDR/query" -d "$QUERY" >/dev/null || fail "flink query $j failed"
    j=$((j + 1))
done

# 4. The tuner must notice the drifting window, retrain a candidate, and
#    promote it. Give the 250ms poll loop (debounce 2) a generous deadline.
i=0
while ! curl -sf "http://$ADDR/metrics/prom" | grep -q '^intellisphere_tune_promotions_total [1-9]'; do
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        fail "tuner never promoted a candidate" "$(curl -sf "http://$ADDR/metrics/prom" | grep ^intellisphere_tune)"
    fi
    sleep 0.5
done

# 5. Promotion resets the accuracy window, clearing the drift flag. An
#    execution in flight during the swap can re-raise it with a couple of
#    stale observations scored by the replaced model; a few post-promotion
#    queries — predicted by the promoted model, q-error near 1 even under
#    the latency regime — wash those out of the window.
i=0
while curl -sf "http://$ADDR/metrics/prom" |
    grep 'intellisphere_estimator_drifting{system="flink"' | grep -qv ' 0$'; do
    i=$((i + 1))
    if [ "$i" -ge 15 ]; then
        fail "flink drift flag never cleared after promotion" \
            "$(curl -sf "http://$ADDR/metrics/prom" | grep drifting)"
    fi
    j=0
    while [ "$j" -lt 5 ]; do
        curl -sf "http://$ADDR/query" -d "$QUERY" >/dev/null || fail "settle query failed"
        j=$((j + 1))
    done
    sleep 0.5
done

# 6. /models shows the lineage: the initial model archived, the tuned one
#    live with its holdout score.
out=$(curl -sf "http://$ADDR/models")
echo "$out" | grep -q '"origin": *"initial"' || fail "initial version not archived" "$out"
echo "$out" | grep -q '"origin": *"tuned"' || fail "tuned version not recorded" "$out"
echo "$out" | grep -q '"holdout": *{' || fail "promotion carries no holdout score" "$out"

# 7. Rollback restores the previous version (the settle queries may have
#    driven more than one promotion, so only the live flag and the counter
#    are pinned, not which origin becomes live).
out=$(curl -sf "http://$ADDR/models" -d '{"action":"rollback","system":"flink"}')
echo "$out" | grep -q '"live": *true' || fail "rolled-back version not live" "$out"
echo "$out" | grep -q '"origin": *"' || fail "rollback returned no version" "$out"
curl -sf "http://$ADDR/metrics/prom" | grep -q '^intellisphere_tune_rollbacks_total [1-9]' ||
    fail "rollback not counted on /metrics/prom"

# 8. Graceful shutdown (stops the tuner loop before flushing feedback).
kill "$PID"
wait "$PID" 2>/dev/null || true
grep -q "bye" "$LOG" || fail "server did not shut down gracefully"
PID=

echo "tuner smoke OK: drift -> retrain -> shadow-score -> promote -> rollback"
