package intellisphere

import (
	"testing"

	"intellisphere/internal/catalog"
	"intellisphere/internal/datagen"
)

func fig10Table(t *testing.T, rows int64, size int, system string) *catalog.Table {
	t.Helper()
	tb, err := datagen.Table(rows, size, system)
	if err != nil {
		t.Fatalf("datagen.Table: %v", err)
	}
	return tb
}

// TestFacadeEndToEnd exercises the public API exactly the way the README's
// quickstart does: build an engine, register an openbox remote, register
// foreign tables, and run a federated query.
func TestFacadeEndToEnd(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Seed: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	hive, err := NewHiveSystem("hive", DefaultHiveCluster(), SystemOptions{NoiseAmp: 0.01, Seed: 2})
	if err != nil {
		t.Fatalf("NewHiveSystem: %v", err)
	}
	if _, _, err := eng.RegisterRemoteSubOp(hive, EngineHive, InHouseComparable); err != nil {
		t.Fatalf("RegisterRemoteSubOp: %v", err)
	}
	tb := fig10Table(t, 1_000_000, 100, "hive")
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatalf("RegisterTable: %v", err)
	}
	tb2 := fig10Table(t, 100_000, 100, "hive")
	if err := eng.RegisterTable(tb2); err != nil {
		t.Fatalf("RegisterTable: %v", err)
	}
	out, err := eng.Explain("SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if out == "" {
		t.Fatal("empty explain")
	}
	res, err := eng.Query("SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 50000")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.ActualSec <= 0 {
		t.Error("no simulated execution time")
	}
}

func TestFacadeDirectEstimation(t *testing.T) {
	hive, err := NewHiveSystem("hive", DefaultHiveCluster(), SystemOptions{NoiseAmp: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	models, report, err := TrainSubOp(hive)
	if err != nil {
		t.Fatalf("TrainSubOp: %v", err)
	}
	if report.TotalCount == 0 {
		t.Error("empty training report")
	}
	prof := &CostingProfile{
		SystemName: "hive", Engine: EngineHive, Active: SubOp,
		Policy: InHouseComparable, SubOpModels: models,
	}
	est, err := NewHybridEstimator(prof)
	if err != nil {
		t.Fatalf("NewHybridEstimator: %v", err)
	}
	ce, err := est.EstimateJoin(JoinSpec{
		Left:       TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 4e6},
		Right:      TableSide{Rows: 1e5, RowSize: 100, ProjectedSize: 28, KeyNDV: 1e5},
		OutputRows: 1e5,
	})
	if err != nil {
		t.Fatalf("EstimateJoin: %v", err)
	}
	if ce.Seconds <= 0 || ce.Approach != SubOp {
		t.Errorf("estimate = %+v", ce)
	}
	cfg := DefaultLogicalConfig(4, 1)
	if cfg.NN.Network.InputDim != 4 {
		t.Error("DefaultLogicalConfig misconfigured")
	}
	if Master != "teradata" {
		t.Errorf("Master = %q", Master)
	}
}

func TestFacadeThreeEngineKinds(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, kind EngineKind) {
		t.Helper()
		cfg := DefaultHiveCluster()
		cfg.Name = name + "-vm"
		var sys RemoteSystem
		switch kind {
		case EngineSpark:
			sys, err = NewSparkSystem(name, cfg, SystemOptions{Seed: 6})
		case EnginePresto:
			sys, err = NewPrestoSystem(name, cfg, SystemOptions{Seed: 7})
		default:
			sys, err = NewHiveSystem(name, cfg, SystemOptions{Seed: 8})
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.RegisterRemoteSubOp(sys, kind, InHouseComparable); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	mk("hive", EngineHive)
	mk("spark", EngineSpark)
	mk("presto", EnginePresto)
	if got := len(eng.Systems()); got != 4 {
		t.Fatalf("systems = %d, want 4 (incl. master)", got)
	}
	// Identical work costed on each remote: presto ≤ spark ≤ hive.
	spec := JoinSpec{
		Left:       TableSide{Rows: 8e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 8e6},
		Right:      TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 4e6},
		OutputRows: 2e6,
	}
	cost := func(name string) float64 {
		t.Helper()
		est, err := eng.Estimator(name)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := est.EstimateJoin(spec)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Seconds
	}
	hive, spark, presto := cost("hive"), cost("spark"), cost("presto")
	if !(presto < spark && spark < hive) {
		t.Errorf("engine-class ordering violated: presto %v, spark %v, hive %v", presto, spark, hive)
	}
}

func TestFacadeProfileLifecycle(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hive, err := NewHiveSystem("hive", DefaultHiveCluster(), SystemOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RegisterRemoteSubOp(hive, EngineHive, WorstCase); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/hive.json"
	if err := eng.SaveProfile("hive", path); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	eng2, err := NewEngine(EngineConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RegisterRemoteFromProfile(hive, path); err != nil {
		t.Fatalf("RegisterRemoteFromProfile: %v", err)
	}
	// Link calibration through the facade.
	measure := func(rows, rowSize float64) (float64, error) {
		return 0.1 + rows*rowSize/1e9, nil
	}
	cfg, err := eng2.CalibrateLink("hive", measure)
	if err != nil {
		t.Fatalf("CalibrateLink: %v", err)
	}
	if cfg.BandwidthBytesPerSec < 8e8 || cfg.BandwidthBytesPerSec > 1.2e9 {
		t.Errorf("calibrated bandwidth = %v", cfg.BandwidthBytesPerSec)
	}
}
