GO ?= go

.PHONY: all build vet test race bench bench-parallel-smoke bench-snapshot bench-snapshot-smoke smoke trace-smoke obs-smoke stream-smoke chaos tuner-smoke crash-smoke crash-soak ci

all: build

build:
	$(GO) build ./...

# go vet's default analyzer suite includes structtag (mismatched JSON tags)
# and copylocks; the shadow analyzer is not in the default suite and would
# need golang.org/x/tools, which this module deliberately avoids — variable
# shadowing is covered by review and the -race suite instead.
vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

# The full suite under the race detector — exercises the parallel training
# and candidate-costing paths with real contention.
race:
	$(GO) test -race ./... -count=1

# Short benchmark smoke: the two perf-critical kernels, one iteration each,
# just to prove they still run (use `go test -bench=.` for real numbers).
bench:
	$(GO) test ./internal/nn -run '^$$' -bench BenchmarkNNTrain -benchtime 1x
	$(GO) test ./internal/optimizer -run '^$$' -bench BenchmarkOptimizerPlan -benchtime 1x

# One-iteration pass over the RunParallel serving benchmarks at -cpu 1:
# proves the parallel suite still builds and runs without paying for a real
# multi-core sweep. Part of `make ci`; real numbers come from
# `make bench-snapshot` (which sweeps -cpu 1,4,8).
bench-parallel-smoke:
	$(GO) test ./internal/engine -run '^$$' -bench 'Parallel' -benchtime 1x -cpu 1

# Full benchmark run recorded as a JSON perf snapshot (BENCH_PR10.json;
# earlier BENCH_PR*.json files are history, never overwritten): ns/op plus
# B/op + allocs/op per benchmark, and the RunParallel serving suite under a
# -cpu sweep with throughput scaling ratios, so the trajectory across PRs
# stays diffable.
bench-snapshot:
	GO="$(GO)" sh scripts/bench_snapshot.sh

# One-iteration pass through the same script into a throwaway file — proves
# the suite and the snapshot parser still work without paying for a real
# measurement. Part of `make ci`.
bench-snapshot-smoke:
	GO="$(GO)" BENCHTIME=1x BENCH_OUT="$$(mktemp)" sh scripts/bench_snapshot.sh

# End-to-end serving smoke: build cmd/serve, start it, run one query and a
# metrics scrape over HTTP, then shut down gracefully.
smoke:
	GO="$(GO)" sh scripts/smoke_serve.sh

# Observability smoke: traced query against a live cmd/serve (span names
# asserted end to end), /trace ring replay, /metrics/prom exposition-format
# check, and the -pprof surface.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

# Continuous-observability smoke: a live cmd/serve with tight SLO windows
# must correlate a /events wide event to its /trace span tree, fill the
# /history time-series, drive the availability SLO through a full firing →
# resolved burn-rate cycle, expose histogram exemplars on /metrics/prom,
# and write the NDJSON event log.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

# High-QPS serving smoke: 100 statements pipelined down one /query/stream
# connection against a live cmd/serve (in-order, length-prefix-framed
# responses asserted), then a saturation pass against a one-slot admission
# gate: over-queue arrivals shed 503 + Retry-After, queued work completes.
stream-smoke:
	GO="$(GO)" sh scripts/stream_smoke.sh

# Fault-injection suite: the seeded chaos tests under the race detector,
# then an outage + recovery cycle driven against a live cmd/serve through
# the /faults control plane.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/... -count=1
	GO="$(GO)" sh scripts/chaos_serve.sh

# Adaptivity smoke: a live cmd/serve with the blackbox flink remote and a
# fast drift tuner; a 20x latency regime injected through /faults must drive
# the full loop — drift flagged, candidate retrained from executed-query
# logs, shadow-scored, promoted (drift flag clears) — and POST /models must
# roll the promotion back.
tuner-smoke:
	GO="$(GO)" sh scripts/tuner_smoke.sh

# Durability smoke: mutate a -data-dir server through the admin surface,
# SIGKILL it, restart against the same directory, and require byte-identical
# /explain plans; then a SIGTERM → snapshot-restore cycle.
crash-smoke:
	GO="$(GO)" sh scripts/crash_smoke.sh

# Seeded crash-recovery soak: the black-box e2e harness drives randomized
# actions interleaved with SIGKILL+restart cycles, checking acked mutations,
# byte-identical plans vs a never-killed reference, breaker recovery, and
# goroutine leaks after every recovery. The CI default is a short soak; the
# full acceptance run is
#   $(GO) test -race ./test/e2e -chaos.actions=2000 -chaos.seed=7 -timeout 30m
crash-soak:
	$(GO) test -race ./test/e2e -run TestCrashRecoverySoak -count=1

ci: vet build race bench bench-parallel-smoke bench-snapshot-smoke smoke trace-smoke obs-smoke stream-smoke chaos tuner-smoke crash-smoke crash-soak
