GO ?= go

.PHONY: all build vet test race bench smoke chaos ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

# The full suite under the race detector — exercises the parallel training
# and candidate-costing paths with real contention.
race:
	$(GO) test -race ./... -count=1

# Short benchmark smoke: the two perf-critical kernels, one iteration each,
# just to prove they still run (use `go test -bench=.` for real numbers).
bench:
	$(GO) test ./internal/nn -run '^$$' -bench BenchmarkNNTrain -benchtime 1x
	$(GO) test ./internal/optimizer -run '^$$' -bench BenchmarkOptimizerPlan -benchtime 1x

# End-to-end serving smoke: build cmd/serve, start it, run one query and a
# metrics scrape over HTTP, then shut down gracefully.
smoke:
	GO="$(GO)" sh scripts/smoke_serve.sh

# Fault-injection suite: the seeded chaos tests under the race detector,
# then an outage + recovery cycle driven against a live cmd/serve through
# the /faults control plane.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/... -count=1
	GO="$(GO)" sh scripts/chaos_serve.sh

ci: vet build race bench smoke chaos
