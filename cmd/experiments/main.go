// Command experiments regenerates the paper's evaluation (Section 7): every
// figure and table, plus the design-choice ablations, printed as the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments [-full] [-run fig7,fig11,fig12,fig13,fig14,table1,ablations]
//
// The default -run value executes everything. Without -full the quick
// configuration runs (reduced workload sizes, identical shapes); with -full
// the paper-scale workloads run (120 tables, 1000 join pairs, ~3600
// aggregation queries — expect minutes of wall-clock time for the neural
// training).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"intellisphere/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale configuration")
	run := flag.String("run", "all", "comma-separated experiments: fig7,fig11,fig12,fig13,fig14,table1,ablations")
	flag.Parse()

	cfg := experiments.Quick()
	label := "quick"
	if *full {
		cfg = experiments.Full()
		label = "full (paper-scale)"
	}
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("IntelliSphere cost-estimation evaluation — %s configuration\n", label)
	fmt.Printf("remote: simulated Hive (%d data nodes × %d cores, %d tables)\n\n",
		env.Hive.Cluster().DataNodes, env.Hive.Cluster().CoresPerNode, len(env.Tables))

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	list := []experiment{
		{"fig7", func() (fmt.Stringer, error) { return experiments.RunFig7(env) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.RunFig11(env) }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.RunFig12(env) }},
		{"fig13", func() (fmt.Stringer, error) { return experiments.RunFig13(env) }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.RunFig14(env) }},
		{"table1", func() (fmt.Stringer, error) { return experiments.RunTable1(env) }},
	}
	ran := 0
	for _, e := range list {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		fmt.Printf("=== %s (%.1fs wall clock) ===\n%s\n", e.name, time.Since(start).Seconds(), res)
		ran++
	}

	if all || want["ablations"] {
		start := time.Now()
		logAb, err := experiments.RunLogOutputAblation(env)
		if err != nil {
			fatal(err)
		}
		alphaAb, err := experiments.RunAlphaAblation(env)
		if err != nil {
			fatal(err)
		}
		polAb, err := experiments.RunPolicyAblation(env)
		if err != nil {
			fatal(err)
		}
		nkAb, err := experiments.RunNeighborKAblation(env, nil)
		if err != nil {
			fatal(err)
		}
		topoAb, err := experiments.RunTopologyAblation(env)
		if err != nil {
			fatal(err)
		}
		curve, err := experiments.RunTrainingSizeCurve(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== ablations (%.1fs wall clock) ===\n%s\n%s\n%s\n%s\n%s\n%s\n",
			time.Since(start).Seconds(), logAb, alphaAb, polAb, nkAb, topoAb, curve)
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no experiments matched -run=%q", *run))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
