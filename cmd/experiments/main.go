// Command experiments regenerates the paper's evaluation (Section 7): every
// figure and table, plus the design-choice ablations, printed as the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments [-full] [-run fig7,fig11,fig12,fig13,fig14,table1,ablations]
//
// The default -run value executes everything. Without -full the quick
// configuration runs (reduced workload sizes, identical shapes); with -full
// the paper-scale workloads run (120 tables, 1000 join pairs, ~3600
// aggregation queries — expect minutes of wall-clock time for the neural
// training).
//
// Independent experiments execute concurrently across the worker pool
// (bounded by GOMAXPROCS or INTELLISPHERE_WORKERS); every result is
// identical to a serial run, and output stays in the canonical order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"intellisphere/internal/experiments"
	"intellisphere/internal/parallel"
)

func main() {
	full := flag.Bool("full", false, "run the paper-scale configuration")
	run := flag.String("run", "all", "comma-separated experiments: fig7,fig11,fig12,fig13,fig14,table1,ablations")
	flag.Parse()

	cfg := experiments.Quick()
	label := "quick"
	if *full {
		cfg = experiments.Full()
		label = "full (paper-scale)"
	}
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("IntelliSphere cost-estimation evaluation — %s configuration\n", label)
	fmt.Printf("remote: simulated Hive (%d data nodes × %d cores, %d tables)\n\n",
		env.Hive.Cluster().DataNodes, env.Hive.Cluster().CoresPerNode, len(env.Tables))

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	list := []experiment{
		{"fig7", func() (fmt.Stringer, error) { return experiments.RunFig7(env) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.RunFig11(env) }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.RunFig12(env) }},
		{"fig13", func() (fmt.Stringer, error) { return experiments.RunFig13(env) }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.RunFig14(env) }},
		{"table1", func() (fmt.Stringer, error) { return experiments.RunTable1(env) }},
	}
	if all || want["ablations"] {
		list = append(list, experiment{"ablations", func() (fmt.Stringer, error) { return runAblations(env) }})
	}

	var selected []experiment
	for _, e := range list {
		if all || want[e.name] {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("no experiments matched -run=%q", *run))
	}

	// Every selected experiment reads the shared environment without mutating
	// it, so independent runs fan out across the pool; reports are rendered
	// eagerly and printed afterwards in the canonical order.
	type report struct {
		text string
		wall float64
	}
	reports, err := parallel.Map(len(selected), func(i int) (report, error) {
		start := time.Now()
		res, err := selected[i].fn()
		if err != nil {
			return report{}, fmt.Errorf("%s: %w", selected[i].name, err)
		}
		return report{text: res.String(), wall: time.Since(start).Seconds()}, nil
	})
	if err != nil {
		fatal(err)
	}
	for i, r := range reports {
		fmt.Printf("=== %s (%.1fs wall clock) ===\n%s\n", selected[i].name, r.wall, r.text)
	}
}

// ablationsReport bundles the six ablation studies into one printable block.
type ablationsReport []fmt.Stringer

func (r ablationsReport) String() string {
	parts := make([]string, len(r))
	for i, s := range r {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}

// runAblations executes the design-choice ablations concurrently and keeps
// their traditional output order.
func runAblations(env *experiments.Env) (fmt.Stringer, error) {
	runs := []func() (fmt.Stringer, error){
		func() (fmt.Stringer, error) { return experiments.RunLogOutputAblation(env) },
		func() (fmt.Stringer, error) { return experiments.RunAlphaAblation(env) },
		func() (fmt.Stringer, error) { return experiments.RunPolicyAblation(env) },
		func() (fmt.Stringer, error) { return experiments.RunNeighborKAblation(env, nil) },
		func() (fmt.Stringer, error) { return experiments.RunTopologyAblation(env) },
		func() (fmt.Stringer, error) { return experiments.RunTrainingSizeCurve(env, nil) },
	}
	out, err := parallel.Map(len(runs), func(i int) (fmt.Stringer, error) {
		return runs[i]()
	})
	if err != nil {
		return nil, err
	}
	return ablationsReport(out), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
