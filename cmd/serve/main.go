// Command serve runs the demo federation behind an HTTP/JSON API: the same
// three simulated remotes and Figure 10 tables as cmd/intellisphere, but
// served concurrently to many clients with a plan cache in front of the
// optimizer.
//
// Usage:
//
//	serve -addr :8080
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ..."}   plan + execute
//	POST /explain  {"sql": "SELECT ..."}   plan only
//	GET  /query?q=SELECT+...               curl-friendly form of the above
//	GET  /profiles                         registered systems and estimators
//	GET  /metrics                          QPS, latency, cache hit rate
//
// SIGINT/SIGTERM drain in-flight requests and flush pending estimator
// feedback before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intellisphere/internal/demo"
	"intellisphere/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "simulator noise seed")
	workers := flag.Int("workers", 0, "worker bound for training and candidate costing (0 = process default)")
	cacheSize := flag.Int("cache-size", 0, "plan cache capacity (0 = default 256, negative disables)")
	flag.Parse()

	log.Printf("building demo federation (seed %d)...", *seed)
	eng, err := demo.Build(demo.Config{Seed: *seed, Workers: *workers, PlanCacheSize: *cacheSize})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng).Handler(*timeout),
		ReadHeaderTimeout: 10 * time.Second,
		// The timeout handler bounds the work; give writes a little slack
		// beyond it so timeout responses still reach the client.
		WriteTimeout: *timeout + 5*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		eng.FlushFeedback()
		log.Print("bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
}
