// Command serve runs the demo federation behind an HTTP/JSON API: the same
// three simulated remotes and Figure 10 tables as cmd/intellisphere, but
// served concurrently to many clients with a plan cache in front of the
// optimizer.
//
// Usage:
//
//	serve -addr :8080
//
// Endpoints:
//
//	POST /query        {"sql": "SELECT ..."}   plan + execute
//	POST /query/batch  ["SELECT ...", ...]     plan together, execute in order
//	POST /query/stream NDJSON statements       pipelined: length-prefixed frames back
//	POST /explain      {"sql": "SELECT ..."}   plan only
//	GET  /query?q=SELECT+...                   curl-friendly form of the above
//	GET  /query?q=SELECT+...&trace=1           traced form: returns the span tree
//	GET  /profiles                             registered systems and estimators
//	GET  /metrics                              QPS, latency, cache hit rate
//	GET  /metrics/prom                         Prometheus text exposition
//	GET  /trace?n=5&format=text                recent traced queries
//	GET  /trace?errors=1&system=hive&min_ms=50 filtered traces
//	GET  /events?n=100&errors=1                recent wide query events
//	GET  /history?window=15m&step=10s          embedded metrics time series
//	GET  /slo                                  objectives, burn rates, alert states
//	GET  /health                               breaker states and fallback counters
//	GET  /faults                               fault-injector switches and stats
//	POST /faults   {"system": "hive", "outage": true}       force/lift an outage
//	POST /faults   {"system": "hive", "rates": {...}}       dial fault rates live
//	GET  /models                               model versions per tunable system
//	POST /models   {"action": "tune", "system": ...}        candidate tune/rollback
//	GET  /catalog                              tables with materialization flags
//	POST /catalog  {"table": {...}}                         register a table
//	POST /catalog  {"materialize": "name"}                  materialize locally
//	GET  /links                                QueryGrid link configurations
//	POST /links    {"system": ..., "link": {...}}           install an override
//
// -data-dir makes engine state durable: admin mutations (catalog
// registrations, materializations, link overrides, profile switches, model
// promotions and rollbacks) append to a checksummed write-ahead log and ack
// only after fsync; the WAL rotates into an atomic snapshot past
// -wal-rotate-bytes and on graceful shutdown. Booting against the same
// directory restores the newest valid snapshot, replays the log past it —
// truncating any torn tail a crash left behind — and resumes with plans
// byte-identical to the pre-crash process. Without the flag the server is
// stateless, exactly as before.
//
// -logical-remote adds a fourth, blackbox remote ("flink") whose cost
// models are logical-op neural networks — the family the feedback loop can
// retrain. -tune-interval arms the background drift tuner over it (and any
// other profile-backed system): accuracy windows that stay above the drift
// threshold trigger a candidate retrain, shadow-scored against the live
// model on held-out executions and promoted only on improvement.
// -tune-drift-q, -tune-holdout, and -tune-min-log tune the loop.
//
// -warm pre-plans the demo statement mix (demo.Statements) so the plan
// cache is hot before the first client arrives. -pprof additionally mounts
// the net/http/pprof profiling handlers under /debug/pprof/ (off by
// default — profiling endpoints are not for unauthenticated exposure).
// -contention-profile N arms the runtime's mutex and block samplers
// (SetMutexProfileFraction / SetBlockProfileRate) so those two pprof
// endpoints actually populate; combine it with -pprof to measure lock
// contention on a live server.
//
// Observability is on by default: every query feeds the end-to-end latency
// histogram, -event-sample of ordinary queries (plus every error and every
// query past -slow-query-ms) become wide events on /events, a collector
// samples the key serving series every -obs-step into the /history ring, and
// the -slo-* objectives evaluate multi-window burn-rate alerts on /slo.
// -event-log additionally streams events to a size-rotated NDJSON file.
// -obs-step 0 switches the whole pipeline off; the engine then pays one
// atomic load per query for it and nothing else.
//
// The hot endpoints (/query, /query/batch, /query/stream) sit behind an
// admission controller: -max-inflight caps concurrent work, -queue-depth
// bounds the wait line (over-queue arrivals shed with 503 + Retry-After),
// and -rate-limit arms a per-client token bucket keyed by the X-Client-ID
// header (exceeders get 429). Admission decisions are counted on
// /metrics/prom.
//
// Fault injection is seeded and deterministic; with all -fault-* flags at
// zero (the default) every response is byte-identical to a build without
// the fault layer. SIGINT/SIGTERM drain in-flight requests, flush pending
// estimator feedback, and (with -data-dir) write a final snapshot before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"os/signal"
	"syscall"
	"time"

	"intellisphere/internal/admission"
	"intellisphere/internal/demo"
	"intellisphere/internal/durable"
	"intellisphere/internal/engine"
	"intellisphere/internal/faults"
	"intellisphere/internal/nn"
	"intellisphere/internal/obs"
	"intellisphere/internal/resilience"
	"intellisphere/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "simulator noise seed")
	workers := flag.Int("workers", 0, "worker bound for training and candidate costing (0 = process default)")
	cacheSize := flag.Int("cache-size", 0, "plan cache capacity (0 = default 256, negative disables)")
	faultTransient := flag.Float64("fault-transient", 0, "per-call transient failure rate on every remote [0,1)")
	faultLatency := flag.Float64("fault-latency", 0, "per-call latency-spike rate on every remote [0,1)")
	faultFactor := flag.Float64("fault-latency-factor", 0, "latency-spike multiplier (0 = default 10x)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-injector draw seed (same seed, same fault sequence)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures that open a breaker (0 = default 5)")
	breakerTimeout := flag.Duration("breaker-open-timeout", 0, "open-breaker rejection window before half-open probes (0 = default 10s)")
	maxInFlight := flag.Int("max-inflight", 0, "admission cap on concurrently executing requests (0 = default 64)")
	queueDepth := flag.Int("queue-depth", 0, "bounded wait line beyond the in-flight cap; arrivals past it shed with 503 (0 = default 2x max-inflight)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client token-bucket refill in requests/sec, keyed by X-Client-ID (0 = unlimited)")
	warm := flag.Bool("warm", false, "pre-plan the demo statement mix into the plan cache before serving")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	contention := flag.Int("contention-profile", 0, "mutex/block profiling sample rate for the pprof mutex and block endpoints (0 = off; 1 = every event; n = 1-in-n mutex events / n ns block threshold)")
	traceBuffer := flag.Int("trace-buffer", 0, "recent-trace ring capacity (0 = default 64, negative disables)")
	logicalRemote := flag.Bool("logical-remote", false, "add the blackbox 'flink' remote with logical-op (tunable) cost models")
	tuneInterval := flag.Duration("tune-interval", 0, "drift-tuner poll period (0 disables the background tuner)")
	tuneDriftQ := flag.Float64("tune-drift-q", 0, "mean q-error above which the tuner treats a model as drifting (0 = default 2.0)")
	tuneHoldout := flag.Int("tune-holdout", 0, "per-model holdout records withheld for candidate shadow scoring (0 = default 8)")
	tuneMinLog := flag.Int("tune-min-log", 0, "minimum per-model execution log before a candidate tune (0 = default 16)")
	dataDir := flag.String("data-dir", "", "durable state directory: snapshots + write-ahead log (empty = stateless)")
	walRotate := flag.Int64("wal-rotate-bytes", 0, "WAL size that triggers a background snapshot + log rotation (0 = default 4 MiB, negative disables)")
	eventSample := flag.Float64("event-sample", 1.0, "wide-event head-sampling rate for ordinary queries [0,1]; errors and slow queries are always captured")
	slowQueryMS := flag.Int("slow-query-ms", 500, "latency at which a query counts as slow and is always captured as an event (0 disables the rule)")
	eventBuffer := flag.Int("event-buffer", 0, "in-memory wide-event ring capacity behind /events (0 = default 1024)")
	eventLog := flag.String("event-log", "", "NDJSON wide-event log path, size-rotated (empty = in-memory ring only)")
	eventLogMax := flag.Int64("event-log-max-bytes", 0, "event-log size that triggers rotation to .1 (0 = default 8 MiB)")
	obsStep := flag.Duration("obs-step", 5*time.Second, "metrics-history collector step behind /history (<= 0 disables the whole observability pipeline)")
	sloAvailability := flag.Float64("slo-availability", 0.999, "availability SLO target as a good fraction (0 disables)")
	sloLatency := flag.Duration("slo-latency-p99", 250*time.Millisecond, "p99 latency SLO threshold (0 disables)")
	sloQError := flag.Float64("slo-qerror", 0, "estimator mean q-error SLO threshold (0 disables)")
	sloFast := flag.Duration("slo-fast", time.Minute, "fast burn-rate window")
	sloSlow := flag.Duration("slo-slow", 5*time.Minute, "slow burn-rate window")
	sloBurn := flag.Float64("slo-burn", 14, "burn-rate multiple that fires an SLO alert")
	flag.Parse()

	log.Printf("building demo federation (seed %d)...", *seed)
	fed, err := demo.BuildFederation(demo.Config{
		Seed: *seed, Workers: *workers, PlanCacheSize: *cacheSize,
		Faults: faults.Config{
			Seed: *faultSeed,
			Rates: faults.Rates{
				Transient:     *faultTransient,
				Latency:       *faultLatency,
				LatencyFactor: *faultFactor,
			},
		},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *breakerFailures,
			OpenTimeout:      *breakerTimeout,
		},
		TraceBuffer:   *traceBuffer,
		LogicalRemote: *logicalRemote,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	eng := fed.Engine
	var dur *engine.Durability
	if *dataDir != "" {
		// Durability attaches after the deterministic boot build: recovery
		// restores the newest valid snapshot, replays the WAL past it, and
		// every admin mutation from here on acks only after its fsynced log
		// append. SIGKILL at any point loses nothing acknowledged.
		var rec durable.Recovery
		dur, rec, err = engine.OpenDurability(eng, engine.DurabilityConfig{
			Dir: *dataDir, RotateBytes: *walRotate,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve: recover:", err)
			os.Exit(1)
		}
		switch {
		case rec.Restored:
			log.Printf("recovered %s: snapshot seq %d + %d WAL records in %.3fs (discarded %d snapshots, torn tail %v)",
				*dataDir, rec.SnapshotSeq, rec.Replayed, rec.DurationSec, rec.SnapshotsDiscarded, rec.TornTail)
		case rec.Replayed > 0:
			log.Printf("recovered %s: %d WAL records replayed in %.3fs (torn tail %v)",
				*dataDir, rec.Replayed, rec.DurationSec, rec.TornTail)
		default:
			log.Printf("durable state in %s (fresh)", *dataDir)
		}
	}
	if *warm {
		sqls := demo.Statements()
		for _, sql := range sqls {
			if _, err := eng.Explain(sql); err != nil {
				log.Printf("warm %q: %v", sql, err)
			}
		}
		log.Printf("plan cache warmed with %d statements", len(sqls))
	}
	if *faultTransient > 0 || *faultLatency > 0 {
		log.Printf("fault injection armed: transient %.2f latency %.2f (seed %d)", *faultTransient, *faultLatency, *faultSeed)
	}
	var tuner *engine.Tuner
	if *tuneInterval > 0 {
		tuner = eng.StartTuner(engine.TunerConfig{
			Interval: *tuneInterval,
			DriftQ:   *tuneDriftQ,
			Tune: engine.TuneOptions{
				Holdout: *tuneHoldout,
				MinLog:  *tuneMinLog,
				// A bounded retraining pass keeps tune latency predictable on
				// a live server; candidates that need more epochs can be
				// force-tuned through POST /models.
				Train: nn.TrainConfig{Iterations: 300, LearningRate: 0.01, BatchSize: 32, Optimizer: nn.Adam, Seed: *seed},
			},
		})
		log.Printf("drift tuner armed: interval %s", *tuneInterval)
	}

	srvOpts := server.New(eng).
		WithFaults(fed.Injectors).
		WithAdmission(admission.Config{
			MaxInFlight: *maxInFlight,
			QueueDepth:  *queueDepth,
			RateLimit:   *rateLimit,
		})
	if dur != nil {
		srvOpts = srvOpts.WithDurability(dur)
	}
	var observer *obs.Observer
	if *obsStep > 0 {
		observer, err = obs.New(obs.Config{
			Events: obs.RecorderConfig{
				SampleRate:    *eventSample,
				SlowThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
				RingSize:      *eventBuffer,
			},
			EventLogPath:     *eventLog,
			EventLogMaxBytes: *eventLogMax,
			Step:             *obsStep,
			Objectives:       obs.DefaultObjectives(*sloAvailability, *sloLatency, *sloQError, *sloFast, *sloSlow, *sloBurn),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		srvOpts = srvOpts.WithObservability(observer)
		// The cumulative source reads engine + admission stats, so the
		// collector starts only after the server is fully assembled.
		observer.Start(srvOpts.ObsSource())
		if *eventLog != "" {
			log.Printf("observability on: step %s, sample %.3g, event log %s", *obsStep, *eventSample, *eventLog)
		} else {
			log.Printf("observability on: step %s, sample %.3g", *obsStep, *eventSample)
		}
	}
	handler := srvOpts.Handler(*timeout)
	if *contention > 0 {
		// Without these, the /debug/pprof/mutex and /debug/pprof/block
		// endpoints exist but stay silently empty — the runtime samples
		// nothing by default. Sampling costs a little on every contended
		// lock, so it stays opt-in rather than riding -pprof.
		runtime.SetMutexProfileFraction(*contention)
		runtime.SetBlockProfileRate(*contention)
		log.Printf("contention profiling on: mutex fraction=%d, block rate=%dns", *contention, *contention)
	}
	if *pprofOn {
		// The API mux is timeout-wrapped; pprof handlers must not be (a CPU
		// profile legitimately streams for 30s), so they mount on an outer
		// mux beside the API routes, explicitly rather than through the
		// pprof package's DefaultServeMux registrations.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
		log.Print("pprof mounted at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// The timeout handler bounds the work; give writes a little slack
		// beyond it so timeout responses still reach the client.
		WriteTimeout: *timeout + 5*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Shutdown order matters: drain HTTP first (no new mutations), stop
		// the background tuner (no more model promotions), flush the bounded
		// feedback queue into the estimators, then snapshot the final state
		// and close the store — the next boot restores from the snapshot with
		// an empty WAL.
		if tuner != nil {
			tuner.Stop()
		}
		// Stopping the observer drains the event log's final batch, so a
		// graceful shutdown loses no captured events.
		observer.Stop()
		eng.FlushFeedback()
		if dur != nil {
			if err := dur.Snapshot(); err != nil {
				log.Printf("shutdown snapshot: %v", err)
			}
			if err := dur.Close(); err != nil {
				log.Printf("close durable store: %v", err)
			}
		}
		log.Print("bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
}
