// Command intellisphere is an interactive demo of the federated engine: it
// stands up a master engine with three simulated remote systems (Hive-like,
// Spark-like, and Presto-like clusters), registers the Figure 10 synthetic
// tables across them, trains the cost models, and then accepts SQL on
// standard input.
//
// Usage:
//
//	intellisphere                 # interactive shell
//	echo "SELECT ..." | intellisphere
//	intellisphere -q "SELECT ..."
//
// Shell commands:
//
//	\tables        list registered tables
//	\systems       list registered systems
//	explain <sql>  plan a query without executing it
//	<sql>          plan, execute, and report actual simulated times
//	\quit          exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"intellisphere"
	"intellisphere/internal/demo"
)

func main() {
	query := flag.String("q", "", "run one query and exit")
	flag.Parse()

	eng, err := setup()
	if err != nil {
		fatal(err)
	}
	if *query != "" {
		if err := runLine(eng, *query); err != nil {
			fatal(err)
		}
		return
	}

	interactive := fileIsTerminal(os.Stdin)
	if interactive {
		fmt.Println("intellisphere demo shell — \\tables, \\systems, explain <sql>, \\quit")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Print("intellisphere> ")
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			break
		}
		if err := runLine(eng, line); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// setup builds the shared demo federation (internal/demo): hive owns the
// bulk of the Figure 10 tables, spark owns a handful, and two small tables
// are materialized so queries over them return real rows.
func setup() (*intellisphere.Engine, error) {
	return demo.Build(demo.Config{Seed: 1})
}

func runLine(eng *intellisphere.Engine, line string) error {
	switch {
	case line == `\tables`:
		for _, t := range eng.Catalog().List() {
			sys := t.System
			if sys == "" {
				sys = intellisphere.Master
			}
			fmt.Printf("  %-20s %12d rows × %4d B  on %s\n", t.Name, t.Rows, t.RowSize(), sys)
		}
		return nil
	case line == `\systems`:
		for _, s := range eng.Systems() {
			fmt.Println(" ", s)
		}
		return nil
	case strings.HasPrefix(strings.ToLower(line), "explain "):
		out, err := eng.Explain(line[len("explain "):])
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	default:
		res, err := eng.Query(line)
		if err != nil {
			return err
		}
		fmt.Print(res.Plan.Explain())
		fmt.Printf("executed in %.2f simulated seconds (estimate was %.2f)\n", res.ActualSec, res.Plan.EstimatedSec)
		if res.Rows != nil {
			printRows(res)
		}
		return nil
	}
}

func printRows(res *intellisphere.QueryResult) {
	const maxRows = 10
	fmt.Println(strings.Join(res.Rows.Columns, "\t"))
	for i, row := range res.Rows.Rows {
		if i == maxRows {
			fmt.Printf("... (%d rows total)\n", len(res.Rows.Rows))
			return
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%g", v)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}

func fileIsTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "intellisphere:", err)
	os.Exit(1)
}
