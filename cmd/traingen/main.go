// Command traingen materializes the paper's training artifacts as CSV on
// standard output: the Figure 10 table inventory, the aggregation and join
// training workloads (with their SQL text, model dimensions, and — when
// -execute is set — the simulated observed costs), and the sub-operator
// probe suite.
//
// Usage:
//
//	traingen -what tables
//	traingen -what agg -execute
//	traingen -what join -pairs 1000 -execute
//	traingen -what probes
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"intellisphere/internal/cluster"
	"intellisphere/internal/datagen"
	"intellisphere/internal/remote"
	"intellisphere/internal/workload"
)

func main() {
	what := flag.String("what", "tables", "artifact to dump: tables, agg, join, probes")
	pairs := flag.Int("pairs", 1000, "join training pairs (join only)")
	seed := flag.Int64("seed", 7, "workload sampling seed")
	execute := flag.Bool("execute", false, "execute each query on the simulated Hive remote and record its cost")
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	tables, err := datagen.Tables("hive")
	if err != nil {
		fatal(err)
	}
	var sys remote.System
	if *execute {
		sys, err = remote.NewHive("hive", cluster.DefaultHive(), remote.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
	}

	switch *what {
	case "tables":
		write(w, []string{"name", "rows", "record_size_bytes", "system"})
		for _, t := range tables {
			write(w, []string{t.Name, strconv.FormatInt(t.Rows, 10), strconv.Itoa(t.RowSize()), t.System})
		}
	case "agg":
		qs, err := workload.AggTrainingSet(tables)
		if err != nil {
			fatal(err)
		}
		header := []string{"sql", "input_rows", "input_row_size", "output_rows", "output_row_size", "num_aggregates"}
		if *execute {
			header = append(header, "elapsed_sec")
		}
		write(w, header)
		for _, q := range qs {
			row := []string{
				q.SQL(),
				ftoa(q.Spec.InputRows), ftoa(q.Spec.InputRowSize),
				ftoa(q.Spec.OutputRows), ftoa(q.Spec.OutputRowSize),
				strconv.Itoa(q.Spec.NumAggregates),
			}
			if *execute {
				ex, err := sys.ExecuteAgg(q.Spec)
				if err != nil {
					fatal(err)
				}
				row = append(row, ftoa(ex.ElapsedSec))
			}
			write(w, row)
		}
	case "join":
		qs, err := workload.JoinTrainingSet(tables, *pairs, *seed)
		if err != nil {
			fatal(err)
		}
		header := append([]string{"sql"}, dimHeader()...)
		if *execute {
			header = append(header, "elapsed_sec")
		}
		write(w, header)
		for _, q := range qs {
			row := []string{q.SQL()}
			for _, d := range q.Spec.Dims() {
				row = append(row, ftoa(d))
			}
			if *execute {
				ex, err := sys.ExecuteJoin(q.Spec)
				if err != nil {
					fatal(err)
				}
				row = append(row, ftoa(ex.ElapsedSec))
			}
			write(w, row)
		}
	case "probes":
		write(w, []string{"sub_op", "symbol", "records", "record_size_bytes", "build_bytes"})
		for _, op := range remote.AllSubOps() {
			for _, size := range []float64{40, 70, 100, 250, 500, 1000} {
				for _, n := range []float64{1e6, 2e6, 4e6, 8e6} {
					write(w, []string{op.String(), op.Symbol(), ftoa(n), ftoa(size), "0"})
					if op == remote.HashBuild {
						write(w, []string{op.String(), op.Symbol(), ftoa(n), ftoa(size), strconv.FormatInt(1<<42, 10)})
					}
				}
			}
		}
	default:
		fatal(fmt.Errorf("unknown artifact %q (want tables, agg, join, or probes)", *what))
	}
}

func dimHeader() []string {
	return []string{"row_size_r", "num_rows_r", "row_size_s", "num_rows_s", "proj_size_r", "proj_size_s", "num_output"}
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func write(w *csv.Writer, row []string) {
	if err := w.Write(row); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traingen:", err)
	os.Exit(1)
}
