// Quickstart: stand up the IntelliSphere master engine, register one
// openbox Hive-like remote system (sub-operator costing, Section 4 of the
// paper), register two foreign tables, and run a federated join — printing
// the cost-based plan, the rejected placements, and the simulated actual
// execution time.
package main

import (
	"fmt"
	"log"

	"intellisphere"
	"intellisphere/internal/datagen"
)

func main() {
	// The master ("Teradata") engine. It calibrates its own cost model on
	// construction.
	eng, err := intellisphere.NewEngine(intellisphere.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A Hive-like remote on the paper's 4-node evaluation cluster.
	hive, err := intellisphere.NewHiveSystem("hive", intellisphere.DefaultHiveCluster(), intellisphere.SystemOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Openbox registration: the engine probes the remote with a few dozen
	// primitive queries (Figure 5) and learns per-record linear models for
	// each sub-operator.
	_, report, err := eng.RegisterRemoteSubOp(hive, intellisphere.EngineHive, intellisphere.InHouseComparable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sub-op training: %d probe queries, %.1f simulated minutes\n",
		report.TotalCount, report.TotalSec/60)
	for _, sr := range report.SubOps[:3] {
		fmt.Printf("  learned %-9s %s\n", sr.Target, sr.Line)
	}

	// Two foreign tables from the Figure 10 synthetic dataset, owned by hive.
	for _, spec := range []struct {
		rows int64
		size int
	}{{80_000_000, 500}, {1_000_000, 100}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hive")
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.RegisterTable(tb); err != nil {
			log.Fatal(err)
		}
	}

	// A federated join. The optimizer costs running it on hive versus
	// shipping the inputs to the master, and picks the cheaper plan.
	sql := "SELECT r.a1, s.a1 FROM t80000000_500 r JOIN t1000000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000"
	fmt.Printf("\n%s\n\n", sql)
	res, err := eng.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Plan.Explain())
	fmt.Printf("\nexecuted in %.1f simulated seconds (estimate %.1f)\n", res.ActualSec, res.Plan.EstimatedSec)
}
