// Hybrid costing profiles, Section 5 of the paper (Figure 9): a remote
// system "C" with little internal knowledge is first costed with an
// approximate sub-operator model (its probe training takes minutes), while
// the prolonged logical-op training runs "in the background"; once the
// neural models exist they are installed into the costing profile and the
// profile switches approaches. The profile — the CP of Figure 9 — is
// serialized to disk and restored, and the per-operator override extension
// (aggregations via logical-op, joins via sub-op) is demonstrated.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"intellisphere"
	"intellisphere/internal/catalog"
	"intellisphere/internal/core"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/plan"
	"intellisphere/internal/workload"
)

func main() {
	systemC, err := intellisphere.NewHiveSystem("system-c", intellisphere.DefaultHiveCluster(), intellisphere.SystemOptions{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: approximate sub-op costing now (cheap probes).
	models, report, err := intellisphere.TrainSubOp(systemC)
	if err != nil {
		log.Fatal(err)
	}
	profile := &intellisphere.CostingProfile{
		SystemName:  "system-c",
		Engine:      intellisphere.EngineHive,
		Active:      intellisphere.SubOp,
		SwitchAfter: 3, // switch once logical models exist and 3 queries passed
		Policy:      intellisphere.InHouseComparable,
		SubOpModels: models,
	}
	est, err := intellisphere.NewHybridEstimator(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: sub-op profile active after %d probe queries (%.1f simulated minutes)\n",
		report.TotalCount, report.TotalSec/60)

	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 2e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 2e6},
		OutputRows: 1e6,
	}
	for i := 0; i < 3; i++ {
		ce, err := est.EstimateJoin(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  query %d costed by %-10s → %.1fs (%s)\n", i+1, ce.Approach, ce.Seconds, ce.Algorithm)
	}

	// Phase 2: the "prolonged" logical-op training completes.
	joinModel := trainJoinModel(systemC)
	est.InstallLogicalModels(joinModel, nil, nil)
	fmt.Println("phase 2: logical-op models installed into the profile")

	ce, err := est.EstimateJoin(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  query 4 costed by %-10s → %.1fs (profile switched past its threshold)\n", ce.Approach, ce.Seconds)

	// Per-operator override: joins keep the (now secondary) sub-op models.
	est.Profile().PerOperator = map[string]core.Approach{"join": intellisphere.SubOp}
	ce, err = est.EstimateJoin(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with per-operator override, joins route to %s again\n", ce.Approach)

	// Persist the CP and restore it.
	dir, err := os.MkdirTemp("", "intellisphere-profiles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "system-c.json")
	data, err := json.Marshal(est.Profile())
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile persisted to %s (%d bytes)\n", path, len(data))

	var restored intellisphere.CostingProfile
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(raw, &restored); err != nil {
		log.Fatal(err)
	}
	est2, err := intellisphere.NewHybridEstimator(&restored)
	if err != nil {
		log.Fatal(err)
	}
	ce2, err := est2.EstimateJoin(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored profile estimates %.1fs via %s — identical models survive the round trip\n",
		ce2.Seconds, ce2.Approach)
}

func trainJoinModel(sys intellisphere.RemoteSystem) *intellisphere.LogicalModel {
	all, err := datagen.Tables("system-c")
	if err != nil {
		log.Fatal(err)
	}
	var tables []*catalog.Table
	for _, t := range all {
		if t.Rows <= 8_000_000 {
			tables = append(tables, t)
		}
	}
	qs, err := workload.JoinTrainingSet(tables, 100, 31)
	if err != nil {
		log.Fatal(err)
	}
	run, err := workload.RunJoinSet(sys, qs)
	if err != nil {
		log.Fatal(err)
	}
	cfg := intellisphere.DefaultLogicalConfig(7, 32)
	cfg.NN.Train.Iterations = 500
	model, _, err := logicalop.Train("join", plan.JoinDimNames(), run.X, run.Y, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return model
}
