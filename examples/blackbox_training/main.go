// Blackbox (logical-operator) costing walkthrough, Section 3 of the paper:
// a remote system about which nothing is known internally is trained by
// executing thousands of Figure 10 workload queries, a per-operator neural
// network learns the cost surface, and then an out-of-range query
// demonstrates the full Figure 3 flowchart — pivot detection, the online
// remedy (NN + on-the-fly regression combined with α), logging actual
// executions, α re-fitting, and the offline tuning phase that folds the log
// back into the network and expands the trained ranges.
package main

import (
	"fmt"
	"log"

	"intellisphere"
	"intellisphere/internal/catalog"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
	"intellisphere/internal/workload"
)

func main() {
	// The blackbox remote: we use a Hive-like simulator, but the training
	// below never looks inside it — it only submits queries and reads
	// elapsed times.
	blackbox, err := intellisphere.NewHiveSystem("blackbox", intellisphere.DefaultHiveCluster(), intellisphere.SystemOptions{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// Training workload over tables capped at 8M rows (so 20M is genuinely
	// un-seen later).
	tables := fig10TablesUpTo(8_000_000)
	joinQs, err := workload.JoinTrainingSet(tables, 150, 21)
	if err != nil {
		log.Fatal(err)
	}
	run, err := workload.RunJoinSet(blackbox, joinQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d training joins on the blackbox remote (%.1f simulated hours)\n",
		len(joinQs), run.TotalSec/3600)

	cfg := intellisphere.DefaultLogicalConfig(7, 22)
	cfg.NN.Train.Iterations = 800
	model, trainRes, err := logicalop.Train("join", plan.JoinDimNames(), run.X, run.Y, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained the 7-dim join network; final normalized RMSE %.4f\n", trainRes.FinalRMSE)
	for _, d := range model.Dimensions() {
		fmt.Printf("  dim %-12s trained range [%.0f, %.0f] step %.0f\n", d.Name, d.Min, d.Max, d.StepSize)
	}

	// An out-of-range join: 20M rows against a model trained up to 8M.
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 20e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 20e6},
		Right:      plan.TableSide{Rows: 20e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 20e6},
		OutputRows: 5e6,
	}
	actual, err := blackbox.ExecuteJoin(spec)
	if err != nil {
		log.Fatal(err)
	}
	est, err := model.Estimate(spec.Dims())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nout-of-range query (20M ⋈ 20M rows): actual %.1fs\n", actual.ElapsedSec)
	fmt.Printf("  pivot dimensions: %v\n", est.PivotDims)
	fmt.Printf("  raw NN:           %.1fs (saturates — cannot extrapolate)\n", est.NNSeconds)
	fmt.Printf("  remedy regression:%.1fs\n", est.RegSeconds)
	fmt.Printf("  combined (α=%.2f): %.1fs\n", model.Alpha(), est.Seconds)

	// Log a batch of out-of-range executions and re-fit α.
	oor, err := workload.OutOfRangeJoins(workload.DefaultOutOfRange())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range oor {
		ex, err := blackbox.ExecuteJoin(s)
		if err != nil {
			log.Fatal(err)
		}
		e, err := model.Estimate(s.Dims())
		if err != nil {
			log.Fatal(err)
		}
		model.Observe(s.Dims(), ex.ElapsedSec, e.NNSeconds, e.RegSeconds)
	}
	alpha, n := model.RefitAlpha()
	fmt.Printf("\nafter logging %d executed out-of-range queries: α re-fit to %.2f\n", n, alpha)

	// Offline tuning: fold the log into the network and expand the ranges.
	if _, err := model.OfflineTune(nn.TrainConfig{Iterations: 600, LearningRate: 0.01, BatchSize: 64, Optimizer: nn.Adam, Seed: 23}); err != nil {
		log.Fatal(err)
	}
	est2, err := model.Estimate(spec.Dims())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after offline tuning: estimate %.1fs (actual %.1fs), out-of-range=%v\n",
		est2.Seconds, actual.ElapsedSec, est2.OutOfRange)
	for _, d := range model.Dimensions() {
		if d.Name == "num_rows_r" {
			fmt.Printf("  dim %s range expanded to [%.0f, %.0f] (islands: %d)\n", d.Name, d.Min, d.Max, len(d.Islands))
		}
	}
}

func fig10TablesUpTo(maxRows int64) []*catalog.Table {
	all, err := datagen.Tables("blackbox")
	if err != nil {
		log.Fatal(err)
	}
	var out []*catalog.Table
	for _, t := range all {
		if t.Rows <= maxRows {
			out = append(out, t)
		}
	}
	return out
}
