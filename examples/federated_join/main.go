// Federated join placement: a three-system ecosystem (Hive-like, Spark-like,
// and the master) where the optimizer's placement decision flips with the
// data layout — the scenario the paper's introduction motivates. The same
// logical join runs three times:
//
//  1. both inputs co-located on hive (plan stays on hive),
//  2. inputs split across hive and spark (the optimizer weighs QueryGrid
//     transfer against each engine's speed),
//  3. small inputs (shipping to the fast master wins).
//
// A post-join aggregation shows multi-operator plans, and real result rows
// come back for the materialized small tables.
package main

import (
	"fmt"
	"log"

	"intellisphere"
	"intellisphere/internal/datagen"
)

func main() {
	eng, err := intellisphere.NewEngine(intellisphere.EngineConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	hive, err := intellisphere.NewHiveSystem("hive", intellisphere.DefaultHiveCluster(), intellisphere.SystemOptions{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := eng.RegisterRemoteSubOp(hive, intellisphere.EngineHive, intellisphere.InHouseComparable); err != nil {
		log.Fatal(err)
	}
	sparkCluster := intellisphere.DefaultHiveCluster()
	sparkCluster.Name = "spark-vm"
	spark, err := intellisphere.NewSparkSystem("spark", sparkCluster, intellisphere.SystemOptions{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := eng.RegisterRemoteSubOp(spark, intellisphere.EngineSpark, intellisphere.InHouseComparable); err != nil {
		log.Fatal(err)
	}

	register := func(rows int64, size int, system, name string) {
		tb, err := datagen.Table(rows, size, system)
		if err != nil {
			log.Fatal(err)
		}
		if name != "" {
			tb.Name = name
		}
		if err := eng.RegisterTable(tb); err != nil {
			log.Fatal(err)
		}
	}
	register(80_000_000, 1000, "hive", "hive_sales")
	register(1_000_000, 100, "hive", "hive_stores")
	register(2_000_000, 250, "spark", "spark_clicks")
	register(20_000, 100, "hive", "tiny_r")
	register(10_000, 100, "hive", "tiny_s")
	for _, t := range []string{"tiny_r", "tiny_s"} {
		if err := eng.Materialize(t); err != nil {
			log.Fatal(err)
		}
	}

	run := func(title, sql string) {
		fmt.Printf("--- %s ---\n%s\n", title, sql)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Plan.Explain())
		fmt.Printf("actual: %.1f simulated seconds\n\n", res.ActualSec)
		if res.Rows != nil {
			fmt.Printf("first rows of %d: %v %v ...\n\n", len(res.Rows.Rows), res.Rows.Rows[0], res.Rows.Rows[1])
		}
	}

	run("co-located join (should stay on hive)",
		"SELECT r.a1, s.a1 FROM hive_sales r JOIN hive_stores s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000")

	run("cross-system join (hive ⋈ spark; transfer is unavoidable)",
		"SELECT r.a1 FROM hive_stores r JOIN spark_clicks s ON r.a1 = s.a1")

	run("small join (shipping to the master wins)",
		"SELECT r.a1 FROM tiny_r r JOIN tiny_s s ON r.a1 = s.a1 WHERE r.a1 + s.z < 2500")

	run("join + aggregation in one plan",
		"SELECT r.a10, SUM(s.a1) FROM hive_sales r JOIN hive_stores s ON r.a1 = s.a1 GROUP BY r.a10")
}
