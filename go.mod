module intellisphere

go 1.22
