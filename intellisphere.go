// Package intellisphere is the public facade of the IntelliSphere
// reproduction: a federated SQL layer whose master engine costs every
// operator placement on heterogeneous remote systems with the paper's
// remote-system cost estimation module (EDBT 2020, "Cost Estimation Across
// Heterogeneous SQL-Based Big Data Infrastructures in Teradata
// IntelliSphere").
//
// The typical flow mirrors the paper's architecture (Figure 1):
//
//	eng, _ := intellisphere.NewEngine(intellisphere.EngineConfig{})
//	hive, _ := intellisphere.NewHiveSystem("hive", intellisphere.DefaultHiveCluster(), intellisphere.SystemOptions{})
//	eng.RegisterRemoteSubOp(hive, intellisphere.EngineHive, intellisphere.InHouseComparable) // openbox: probe training
//	eng.RegisterTable(...)                                                                   // foreign tables
//	res, _ := eng.Query("SELECT r.a1 FROM big r JOIN small s ON r.a1 = s.a1")
//
// Blackbox remotes train per-operator neural models instead
// (Engine.RegisterRemoteLogicalOp), and hybrid costing profiles switch
// between the approaches per system or per operator (package
// internal/core/hybrid, reachable through the engine).
package intellisphere

import (
	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/engine"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/remote"
)

// Engine is the master ("Teradata") engine: catalog, optimizer, training
// orchestration, and federated query execution.
type Engine = engine.Engine

// EngineConfig tunes the master engine.
type EngineConfig = engine.Config

// QueryResult is one executed federated query: the chosen plan, simulated
// actual times, and (for materialized tables) real result rows.
type QueryResult = engine.QueryResult

// LogicalTrainOptions controls blackbox (logical-op) training.
type LogicalTrainOptions = engine.LogicalTrainOptions

// NewEngine builds a master engine and calibrates its own cost model.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// ClusterConfig describes a remote system's cluster shape.
type ClusterConfig = cluster.Config

// DefaultHiveCluster returns the paper's 4-node Hive VM cluster shape.
func DefaultHiveCluster() ClusterConfig { return cluster.DefaultHive() }

// RemoteSystem is a simulated remote engine with a SQL-like interface.
type RemoteSystem = remote.System

// SystemOptions tunes a simulated remote system.
type SystemOptions = remote.Options

// EngineKind distinguishes Hive-like and Spark-like execution models.
type EngineKind = remote.EngineKind

// Engine kinds.
const (
	EngineHive   = remote.EngineHive
	EngineSpark  = remote.EngineSpark
	EnginePresto = remote.EnginePresto
)

// NewHiveSystem builds a Hive-like remote system simulator.
func NewHiveSystem(name string, cfg ClusterConfig, opts SystemOptions) (*remote.Distributed, error) {
	return remote.NewHive(name, cfg, opts)
}

// NewSparkSystem builds a Spark-like remote system simulator.
func NewSparkSystem(name string, cfg ClusterConfig, opts SystemOptions) (*remote.Distributed, error) {
	return remote.NewSpark(name, cfg, opts)
}

// NewPrestoSystem builds a Presto-like MPP remote system simulator.
func NewPrestoSystem(name string, cfg ClusterConfig, opts SystemOptions) (*remote.Distributed, error) {
	return remote.NewPresto(name, cfg, opts)
}

// NewRDBMSSystem builds a single-node RDBMS remote system simulator.
func NewRDBMSSystem(name string, cfg ClusterConfig, opts SystemOptions) (*remote.RDBMS, error) {
	return remote.NewRDBMS(name, cfg, opts)
}

// ChoicePolicy resolves physical-algorithm ambiguity in sub-op costing.
type ChoicePolicy = subop.ChoicePolicy

// Choice policies (Section 4).
const (
	WorstCase         = subop.WorstCase
	AverageCase       = subop.AverageCase
	InHouseComparable = subop.InHouseComparable
)

// Approach names one of the paper's costing approaches.
type Approach = core.Approach

// The three costing approaches.
const (
	LogicalOp = core.LogicalOp
	SubOp     = core.SubOp
	Hybrid    = core.Hybrid
)

// Estimate is a cost prediction with its provenance.
type Estimate = core.Estimate

// Estimator predicts remote operator costs.
type Estimator = core.Estimator

// CostingProfile is a remote system's persisted costing configuration
// (Figure 9's "CP").
type CostingProfile = hybrid.Profile

// HybridEstimator routes estimates through a costing profile.
type HybridEstimator = hybrid.Estimator

// NewHybridEstimator builds an estimator from a costing profile.
func NewHybridEstimator(p *CostingProfile) (*HybridEstimator, error) {
	return hybrid.NewEstimator(p)
}

// JoinSpec, AggSpec, and ScanSpec describe operators for direct estimation.
type (
	JoinSpec  = plan.JoinSpec
	AggSpec   = plan.AggSpec
	ScanSpec  = plan.ScanSpec
	TableSide = plan.TableSide
)

// LogicalModel is a trained logical-operator costing model.
type LogicalModel = logicalop.Model

// LogicalConfig tunes logical-op training.
type LogicalConfig = logicalop.Config

// DefaultLogicalConfig returns the paper's logical-op settings for an
// operator with the given input dimensionality.
func DefaultLogicalConfig(inputDim int, seed int64) LogicalConfig {
	return logicalop.DefaultConfig(inputDim, seed)
}

// SubOpModels is a learned set of per-sub-operator cost models.
type SubOpModels = subop.ModelSet

// TrainSubOp learns a remote system's sub-operator models from probe
// queries (openbox costing, Section 4).
func TrainSubOp(sys RemoteSystem) (*SubOpModels, *subop.Report, error) {
	return subop.Train(sys, subop.TrainConfig{})
}

// Master is the reserved name of the master engine in plans and transfers.
const Master = querygrid.Master
